#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace ds::sim {

std::vector<double> max_min_allocate(const std::vector<FlowPorts>& flow_ports,
                                     const std::vector<double>& caps) {
  const std::size_t nf = flow_ports.size();
  const std::size_t np = caps.size();
  std::vector<double> rates(nf, 0.0);
  if (nf == 0) return rates;

  std::vector<double> cap_rem = caps;
  std::vector<int> port_count(np, 0);
  std::vector<std::vector<int>> port_flows(np);
  for (std::size_t f = 0; f < nf; ++f) {
    for (int p : flow_ports[f]) {
      if (p < 0) continue;
      DS_CHECK_MSG(static_cast<std::size_t>(p) < np, "port index out of range");
      ++port_count[static_cast<std::size_t>(p)];
      port_flows[static_cast<std::size_t>(p)].push_back(static_cast<int>(f));
    }
  }

  std::vector<bool> frozen(nf, false);
  std::size_t remaining = nf;
  while (remaining > 0) {
    // Find the bottleneck port: smallest per-flow share among ports that
    // still carry unfrozen flows.
    double best_share = std::numeric_limits<double>::infinity();
    int best_port = -1;
    for (std::size_t p = 0; p < np; ++p) {
      if (port_count[p] <= 0) continue;
      const double share = std::max(cap_rem[p], 0.0) / port_count[p];
      if (share < best_share) {
        best_share = share;
        best_port = static_cast<int>(p);
      }
    }
    DS_CHECK_MSG(best_port >= 0, "unfrozen flow with no live port");
    // Freeze every unfrozen flow crossing the bottleneck at the bottleneck
    // share and release its demand from all its ports.
    for (int f : port_flows[static_cast<std::size_t>(best_port)]) {
      if (frozen[static_cast<std::size_t>(f)]) continue;
      frozen[static_cast<std::size_t>(f)] = true;
      rates[static_cast<std::size_t>(f)] = best_share;
      --remaining;
      for (int p : flow_ports[static_cast<std::size_t>(f)]) {
        if (p < 0) continue;
        cap_rem[static_cast<std::size_t>(p)] -= best_share;
        --port_count[static_cast<std::size_t>(p)];
      }
    }
  }
  return rates;
}

NetworkFabric::NetworkFabric(Simulator& sim, std::vector<BytesPerSec> nic_bw,
                             BytesPerSec loopback_bw, double group_penalty,
                             std::vector<int> site_of, BytesPerSec wan_bw,
                             obs::Observability* obs)
    : sim_(sim),
      nic_bw_(std::move(nic_bw)),
      loopback_bw_(loopback_bw),
      group_penalty_(group_penalty),
      site_of_(std::move(site_of)),
      wan_bw_(wan_bw),
      last_advance_(sim.now()),
      flows_started_(obs::counter(obs, "net.flows_started")),
      flows_completed_(obs::counter(obs, "net.flows_completed")),
      bytes_delivered_(obs::gauge(obs, "net.bytes_delivered")),
      flow_seconds_(obs::histogram(obs, "net.flow_seconds",
                                   obs::exponential_buckets(0.05, 2.0, 22))),
      flow_bytes_(obs::histogram(obs, "net.flow_bytes",
                                 obs::exponential_buckets(1e5, 4.0, 18))) {
  DS_CHECK_MSG(!nic_bw_.empty(), "fabric needs at least one node");
  for (const auto bw : nic_bw_) DS_CHECK_MSG(bw > 0, "non-positive NIC bandwidth");
  DS_CHECK_MSG(loopback_bw_ > 0, "non-positive loopback bandwidth");
  DS_CHECK_MSG(group_penalty_ >= 0, "negative group penalty");
  if (!site_of_.empty()) {
    DS_CHECK_MSG(site_of_.size() == nic_bw_.size(),
                 "site_of must cover every node");
    for (int st : site_of_) {
      DS_CHECK_MSG(st >= 0, "negative site id");
      num_sites_ = std::max(num_sites_, st + 1);
    }
    DS_CHECK_MSG(num_sites_ == 1 || wan_bw_ > 0,
                 "multi-site fabric needs a positive wan_bw");
  }
}

NetworkFabric::~NetworkFabric() {
  if (pending_event_ != kInvalidEvent) sim_.cancel(pending_event_);
}

FlowId NetworkFabric::start_flow(FlowSpec spec) {
  DS_CHECK_MSG(spec.src >= 0 && spec.src < num_nodes(), "bad src node");
  DS_CHECK_MSG(spec.dst >= 0 && spec.dst < num_nodes(), "bad dst node");
  DS_CHECK_MSG(spec.bytes >= 0, "negative flow volume");
  advance_to_now();
  const FlowId id = next_id_++;
  flows_.emplace(id, Flow{spec.src, spec.dst, spec.bytes, spec.group, 0.0,
                          std::move(spec.on_complete), sim_.now()});
  flows_started_.inc();
  flow_bytes_.observe(spec.bytes);
  reallocate();
  reschedule();
  return id;
}

void NetworkFabric::set_node_scale(NodeId n, double factor) {
  DS_CHECK_MSG(n >= 0 && n < num_nodes(), "set_node_scale: bad node");
  DS_CHECK_MSG(factor > 0, "set_node_scale: factor must be positive");
  if (link_scale_.empty()) link_scale_.assign(nic_bw_.size(), 1.0);
  if (link_scale_[static_cast<std::size_t>(n)] == factor) return;
  advance_to_now();
  link_scale_[static_cast<std::size_t>(n)] = factor;
  reallocate();
  reschedule();
}

void NetworkFabric::cancel(FlowId id) {
  advance_to_now();
  if (flows_.erase(id) > 0) {
    reallocate();
    reschedule();
  }
}

BytesPerSec NetworkFabric::node_rx_rate(NodeId n) const {
  BytesPerSec sum = 0;
  for (const auto& [id, f] : flows_) {
    if (f.dst == n && f.src != f.dst) sum += f.rate;
  }
  return sum;
}

BytesPerSec NetworkFabric::node_tx_rate(NodeId n) const {
  BytesPerSec sum = 0;
  for (const auto& [id, f] : flows_) {
    if (f.src == n && f.src != f.dst) sum += f.rate;
  }
  return sum;
}

void NetworkFabric::advance_to_now() {
  const SimTime now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0) return;
  for (auto& [id, f] : flows_) {
    const Bytes used = std::min(f.remaining, f.rate * dt);
    f.remaining -= used;
    delivered_ += used;
  }
  bytes_delivered_.set(delivered_);
}

void NetworkFabric::reallocate() {
  if (flows_.empty()) return;
  std::vector<FlowPorts> flow_ports;
  std::vector<FlowId> order;
  flow_ports.reserve(flows_.size());
  order.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    order.push_back(id);
    if (f.src == f.dst) {
      flow_ports.push_back({loopback_port(f.src), -1, -1});
    } else {
      int wan = -1;
      const int ss = site_of(f.src);
      const int ds = site_of(f.dst);
      if (ss != ds) wan = wan_port(ss, ds);
      flow_ports.push_back({egress_port(f.src), ingress_port(f.dst), wan});
    }
  }
  const int n = num_nodes();
  std::vector<double> caps(
      static_cast<std::size_t>(3 * n + num_sites_ * num_sites_));
  for (int i = 0; i < n; ++i) {
    const double scale =
        link_scale_.empty() ? 1.0 : link_scale_[static_cast<std::size_t>(i)];
    caps[static_cast<std::size_t>(egress_port(i))] =
        nic_bw_[static_cast<std::size_t>(i)] * scale;
    caps[static_cast<std::size_t>(ingress_port(i))] =
        nic_bw_[static_cast<std::size_t>(i)] * scale;
    caps[static_cast<std::size_t>(loopback_port(i))] = loopback_bw_;
  }
  for (int a = 0; a < num_sites_; ++a)
    for (int b = 0; b < num_sites_; ++b)
      caps[static_cast<std::size_t>(wan_port(a, b))] = wan_bw_ > 0 ? wan_bw_ : 1.0;

  // Cross-group contention: a port interleaving g distinct flow groups
  // (stages) serves only C / (1 + β·(g − 1)).
  if (group_penalty_ > 0) {
    std::vector<std::vector<int>> port_groups(caps.size());
    std::size_t fi = 0;
    for (const auto& [id, f] : flows_) {
      for (int p : flow_ports[fi]) {
        if (p >= 0) port_groups[static_cast<std::size_t>(p)].push_back(f.group);
      }
      ++fi;
    }
    for (std::size_t p = 0; p < caps.size(); ++p) {
      auto& gs = port_groups[p];
      if (gs.size() < 2) continue;
      std::sort(gs.begin(), gs.end());
      const auto distinct =
          static_cast<double>(std::unique(gs.begin(), gs.end()) - gs.begin());
      // Logarithmic degradation: doubling the number of interleaved stages
      // costs a constant efficiency factor (incast-style collapse saturates
      // rather than growing without bound).
      caps[p] /= 1.0 + group_penalty_ * std::log(distinct);
    }
  }

  const std::vector<double> rates = max_min_allocate(flow_ports, caps);
  for (std::size_t i = 0; i < order.size(); ++i) {
    flows_.at(order[i]).rate = rates[i];
  }
}

void NetworkFabric::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (flows_.empty()) return;
  Seconds next = -1;
  for (const auto& [id, f] : flows_) {
    Seconds t;
    if (fluid_done(f.remaining, f.rate)) {
      t = 0.0;
    } else if (f.rate <= 0) {
      continue;  // starved flow; will be reconsidered at the next membership change
    } else {
      t = f.remaining / f.rate;
    }
    if (next < 0 || t < next) next = t;
  }
  if (next < 0) return;
  pending_event_ = sim_.schedule_after(next, [this] {
    pending_event_ = kInvalidEvent;
    on_completion_event();
  });
}

void NetworkFabric::on_completion_event() {
  advance_to_now();
  // Collect completions sorted by flow id: keeps callback order independent
  // of hash-map layout, making runs bit-reproducible across platforms.
  std::vector<std::pair<FlowId, std::function<void()>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (fluid_done(it->second.remaining, it->second.rate)) {
      flows_completed_.inc();
      flow_seconds_.observe(sim_.now() - it->second.started);
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reallocate();
  reschedule();
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, fn] : done) {
    if (fn) fn();
  }
}

}  // namespace ds::sim
