#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.h"

namespace ds::sim {

namespace {

inline FlowId encode_flow(std::int32_t slot, std::uint32_t gen) {
  // Low word = slot + 1 so a live id can never be 0 (callers use 0 as "no
  // flow", mirroring kInvalidEvent).
  return (static_cast<FlowId>(gen) << 32) |
         (static_cast<std::uint32_t>(slot) + 1);
}

}  // namespace

void max_min_allocate_into(const std::vector<FlowPorts>& flow_ports,
                           const std::vector<double>& caps, MaxMinScratch& s) {
  const std::size_t nf = flow_ports.size();
  const std::size_t np = caps.size();
  s.rates.assign(nf, 0.0);
  if (nf == 0) return;

  s.cap_rem.assign(caps.begin(), caps.end());
  s.port_count.assign(np, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (int p : flow_ports[f]) {
      if (p < 0) continue;
      DS_CHECK_MSG(static_cast<std::size_t>(p) < np, "port index out of range");
      ++s.port_count[static_cast<std::size_t>(p)];
    }
  }

  // Flat CSR port->flow lists (flows ascending within each port — the same
  // order the vector-of-vectors built by appending in flow order had).
  s.offset.resize(np + 1);
  s.offset[0] = 0;
  for (std::size_t p = 0; p < np; ++p) s.offset[p + 1] = s.offset[p] + s.port_count[p];
  s.cursor.assign(s.offset.begin(), s.offset.end() - 1);
  s.items.resize(static_cast<std::size_t>(s.offset[np]));
  s.used_ports.clear();
  for (std::size_t p = 0; p < np; ++p) {
    if (s.port_count[p] > 0) s.used_ports.push_back(static_cast<int>(p));
  }
  for (std::size_t f = 0; f < nf; ++f) {
    for (int p : flow_ports[f]) {
      if (p < 0) continue;
      s.items[static_cast<std::size_t>(s.cursor[static_cast<std::size_t>(p)]++)] =
          static_cast<int>(f);
    }
  }

  s.frozen.assign(nf, 0);
  std::size_t remaining = nf;
  while (remaining > 0) {
    // Find the bottleneck port: smallest per-flow share among ports that
    // still carry unfrozen flows. used_ports is ascending, so the scan
    // visits candidates in the same order (and picks the same strict
    // minimum) as a dense 0..np sweep.
    double best_share = std::numeric_limits<double>::infinity();
    int best_port = -1;
    for (int p : s.used_ports) {
      const auto up = static_cast<std::size_t>(p);
      if (s.port_count[up] <= 0) continue;
      const double share = std::max(s.cap_rem[up], 0.0) / s.port_count[up];
      if (share < best_share) {
        best_share = share;
        best_port = p;
      }
    }
    DS_CHECK_MSG(best_port >= 0, "unfrozen flow with no live port");
    // Freeze every unfrozen flow crossing the bottleneck at the bottleneck
    // share and release its demand from all its ports.
    const auto bp = static_cast<std::size_t>(best_port);
    for (int i = s.offset[bp]; i < s.offset[bp + 1]; ++i) {
      const auto f = static_cast<std::size_t>(s.items[static_cast<std::size_t>(i)]);
      if (s.frozen[f]) continue;
      s.frozen[f] = 1;
      s.rates[f] = best_share;
      --remaining;
      for (int p : flow_ports[f]) {
        if (p < 0) continue;
        s.cap_rem[static_cast<std::size_t>(p)] -= best_share;
        --s.port_count[static_cast<std::size_t>(p)];
      }
    }
  }
}

std::vector<double> max_min_allocate(const std::vector<FlowPorts>& flow_ports,
                                     const std::vector<double>& caps) {
  MaxMinScratch s;
  max_min_allocate_into(flow_ports, caps, s);
  return std::move(s.rates);
}

NetworkFabric::NetworkFabric(Simulator& sim, std::vector<BytesPerSec> nic_bw,
                             BytesPerSec loopback_bw, double group_penalty,
                             std::vector<int> site_of, BytesPerSec wan_bw,
                             obs::Observability* obs)
    : sim_(sim),
      nic_bw_(std::move(nic_bw)),
      loopback_bw_(loopback_bw),
      group_penalty_(group_penalty),
      site_of_(std::move(site_of)),
      wan_bw_(wan_bw),
      last_advance_(sim.now()),
      flows_started_(obs::counter(obs, "net.flows_started")),
      flows_completed_(obs::counter(obs, "net.flows_completed")),
      bytes_delivered_(obs::gauge(obs, "net.bytes_delivered")),
      flow_seconds_(obs::histogram(obs, "net.flow_seconds",
                                   obs::exponential_buckets(0.05, 2.0, 22))),
      flow_bytes_(obs::histogram(obs, "net.flow_bytes",
                                 obs::exponential_buckets(1e5, 4.0, 18))) {
  DS_CHECK_MSG(!nic_bw_.empty(), "fabric needs at least one node");
  for (const auto bw : nic_bw_) DS_CHECK_MSG(bw > 0, "non-positive NIC bandwidth");
  DS_CHECK_MSG(loopback_bw_ > 0, "non-positive loopback bandwidth");
  DS_CHECK_MSG(group_penalty_ >= 0, "negative group penalty");
  if (!site_of_.empty()) {
    DS_CHECK_MSG(site_of_.size() == nic_bw_.size(),
                 "site_of must cover every node");
    for (int st : site_of_) {
      DS_CHECK_MSG(st >= 0, "negative site id");
      num_sites_ = std::max(num_sites_, st + 1);
    }
    DS_CHECK_MSG(num_sites_ == 1 || wan_bw_ > 0,
                 "multi-site fabric needs a positive wan_bw");
  }
}

NetworkFabric::~NetworkFabric() {
  if (pending_event_ != kInvalidEvent) sim_.cancel(pending_event_);
}

std::int32_t NetworkFabric::lookup(FlowId id) const {
  const std::uint64_t low = id & 0xffffffffu;
  if (low == 0) return -1;
  const auto slot = static_cast<std::size_t>(low - 1);
  if (slot >= slab_.size()) return -1;
  const Flow& f = slab_[slot];
  if (!f.active || f.gen != static_cast<std::uint32_t>(id >> 32)) return -1;
  return static_cast<std::int32_t>(slot);
}

std::int32_t NetworkFabric::alloc_slot() {
  std::int32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  f.active = true;
  f.prev = tail_;
  f.next = -1;
  if (tail_ >= 0) {
    slab_[static_cast<std::size_t>(tail_)].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  ++num_active_;
  return slot;
}

void NetworkFabric::free_slot(std::int32_t slot) {
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  if (f.prev >= 0) {
    slab_[static_cast<std::size_t>(f.prev)].next = f.next;
  } else {
    head_ = f.next;
  }
  if (f.next >= 0) {
    slab_[static_cast<std::size_t>(f.next)].prev = f.prev;
  } else {
    tail_ = f.prev;
  }
  f.active = false;
  f.on_complete = nullptr;
  ++f.gen;
  free_slots_.push_back(slot);
  --num_active_;
}

FlowId NetworkFabric::start_flow(FlowSpec spec) {
  DS_CHECK_MSG(spec.src >= 0 && spec.src < num_nodes(), "bad src node");
  DS_CHECK_MSG(spec.dst >= 0 && spec.dst < num_nodes(), "bad dst node");
  DS_CHECK_MSG(spec.bytes >= 0, "negative flow volume");
  advance_to_now();
  const std::int32_t slot = alloc_slot();
  Flow& f = slab_[static_cast<std::size_t>(slot)];
  f.src = spec.src;
  f.dst = spec.dst;
  f.remaining = spec.bytes;
  f.group = spec.group;
  f.rate = 0.0;
  f.on_complete = std::move(spec.on_complete);
  f.started = sim_.now();
  flows_started_.inc();
  flow_bytes_.observe(spec.bytes);
  reallocate();
  reschedule();
  return encode_flow(slot, f.gen);
}

void NetworkFabric::set_node_scale(NodeId n, double factor) {
  DS_CHECK_MSG(n >= 0 && n < num_nodes(), "set_node_scale: bad node");
  DS_CHECK_MSG(factor > 0, "set_node_scale: factor must be positive");
  if (link_scale_.empty()) link_scale_.assign(nic_bw_.size(), 1.0);
  if (link_scale_[static_cast<std::size_t>(n)] == factor) return;
  advance_to_now();
  link_scale_[static_cast<std::size_t>(n)] = factor;
  caps_dirty_ = true;
  reallocate();
  reschedule();
}

void NetworkFabric::cancel(FlowId id) {
  advance_to_now();
  const std::int32_t slot = lookup(id);
  if (slot < 0) return;
  free_slot(slot);
  reallocate();
  reschedule();
}

BytesPerSec NetworkFabric::node_rx_rate(NodeId n) const {
  BytesPerSec sum = 0;
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    const Flow& f = slab_[static_cast<std::size_t>(i)];
    if (f.dst == n && f.src != f.dst) sum += f.rate;
  }
  return sum;
}

BytesPerSec NetworkFabric::node_tx_rate(NodeId n) const {
  BytesPerSec sum = 0;
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    const Flow& f = slab_[static_cast<std::size_t>(i)];
    if (f.src == n && f.src != f.dst) sum += f.rate;
  }
  return sum;
}

void NetworkFabric::advance_to_now() {
  const SimTime now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0) return;
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    Flow& f = slab_[static_cast<std::size_t>(i)];
    const Bytes used = std::min(f.remaining, f.rate * dt);
    f.remaining -= used;
    delivered_ += used;
  }
  bytes_delivered_.set(delivered_);
}

void NetworkFabric::rebuild_caps() {
  const int n = num_nodes();
  caps_base_.assign(num_ports(), 0.0);
  for (int i = 0; i < n; ++i) {
    const double scale =
        link_scale_.empty() ? 1.0 : link_scale_[static_cast<std::size_t>(i)];
    caps_base_[static_cast<std::size_t>(egress_port(i))] =
        nic_bw_[static_cast<std::size_t>(i)] * scale;
    caps_base_[static_cast<std::size_t>(ingress_port(i))] =
        nic_bw_[static_cast<std::size_t>(i)] * scale;
    caps_base_[static_cast<std::size_t>(loopback_port(i))] = loopback_bw_;
  }
  for (int a = 0; a < num_sites_; ++a)
    for (int b = 0; b < num_sites_; ++b)
      caps_base_[static_cast<std::size_t>(wan_port(a, b))] =
          wan_bw_ > 0 ? wan_bw_ : 1.0;
  caps_dirty_ = false;
}

void NetworkFabric::reallocate() {
  if (num_active_ == 0) return;
  sc_ports_.clear();
  sc_slots_.clear();
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    const Flow& f = slab_[static_cast<std::size_t>(i)];
    sc_slots_.push_back(i);
    if (f.src == f.dst) {
      sc_ports_.push_back({loopback_port(f.src), -1, -1});
    } else {
      int wan = -1;
      const int ss = site_of(f.src);
      const int ds = site_of(f.dst);
      if (ss != ds) wan = wan_port(ss, ds);
      sc_ports_.push_back({egress_port(f.src), ingress_port(f.dst), wan});
    }
  }
  if (caps_dirty_) rebuild_caps();
  sc_caps_.assign(caps_base_.begin(), caps_base_.end());

  // Cross-group contention: a port interleaving g distinct flow groups
  // (stages) serves only C / (1 + β·(g − 1)).
  if (group_penalty_ > 0) {
    const std::size_t np = sc_caps_.size();
    pg_count_.assign(np, 0);
    for (const FlowPorts& fp : sc_ports_) {
      for (int p : fp) {
        if (p >= 0) ++pg_count_[static_cast<std::size_t>(p)];
      }
    }
    pg_offset_.resize(np + 1);
    pg_offset_[0] = 0;
    for (std::size_t p = 0; p < np; ++p)
      pg_offset_[p + 1] = pg_offset_[p] + pg_count_[p];
    pg_cursor_.assign(pg_offset_.begin(), pg_offset_.end() - 1);
    pg_items_.resize(static_cast<std::size_t>(pg_offset_[np]));
    for (std::size_t fi = 0; fi < sc_ports_.size(); ++fi) {
      const int g = slab_[static_cast<std::size_t>(sc_slots_[fi])].group;
      for (int p : sc_ports_[fi]) {
        if (p >= 0)
          pg_items_[static_cast<std::size_t>(
              pg_cursor_[static_cast<std::size_t>(p)]++)] = g;
      }
    }
    for (std::size_t p = 0; p < np; ++p) {
      if (pg_count_[p] < 2) continue;
      const auto first = pg_items_.begin() + pg_offset_[p];
      const auto last = pg_items_.begin() + pg_offset_[p + 1];
      std::sort(first, last);
      const auto distinct = static_cast<double>(std::unique(first, last) - first);
      // Logarithmic degradation: doubling the number of interleaved stages
      // costs a constant efficiency factor (incast-style collapse saturates
      // rather than growing without bound).
      sc_caps_[p] /= 1.0 + group_penalty_ * std::log(distinct);
    }
  }

  max_min_allocate_into(sc_ports_, sc_caps_, mm_);
  for (std::size_t i = 0; i < sc_slots_.size(); ++i) {
    slab_[static_cast<std::size_t>(sc_slots_[i])].rate = mm_.rates[i];
  }
}

void NetworkFabric::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (num_active_ == 0) return;
  Seconds next = -1;
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    const Flow& f = slab_[static_cast<std::size_t>(i)];
    Seconds t;
    if (fluid_done(f.remaining, f.rate)) {
      t = 0.0;
    } else if (f.rate <= 0) {
      continue;  // starved flow; will be reconsidered at the next membership change
    } else {
      t = f.remaining / f.rate;
    }
    if (next < 0 || t < next) next = t;
  }
  if (next < 0) return;
  pending_event_ = sim_.schedule_after(next, [this] {
    pending_event_ = kInvalidEvent;
    on_completion_event();
  });
}

void NetworkFabric::on_completion_event() {
  advance_to_now();
  // Completions fire in flow start order (= the intrusive list order, = the
  // ascending-id order the old map-based fabric sorted into): callback order
  // is structurally deterministic. The scratch vector is detached while
  // callbacks run — they may start new flows, which re-enters the fabric.
  std::vector<EventFn> done = std::move(done_scratch_);
  done.clear();
  for (std::int32_t i = head_; i >= 0;) {
    Flow& f = slab_[static_cast<std::size_t>(i)];
    const std::int32_t next = f.next;
    if (fluid_done(f.remaining, f.rate)) {
      flows_completed_.inc();
      flow_seconds_.observe(sim_.now() - f.started);
      done.push_back(std::move(f.on_complete));
      free_slot(i);
    }
    i = next;
  }
  reallocate();
  reschedule();
  for (EventFn& fn : done) {
    if (fn) fn();
  }
  done.clear();
  done_scratch_ = std::move(done);
}

}  // namespace ds::sim
