#include "sim/cluster.h"

#include "util/check.h"
#include "util/rng.h"

namespace ds::sim {

using namespace ds;  // unit literals

ClusterSpec ClusterSpec::paper_prototype() {
  ClusterSpec s;
  s.num_workers = 30;
  s.executors_per_worker = 2;
  s.nic_bw_min = 100_Mbps;
  s.nic_bw_max = 480_Mbps;
  s.disk_bw = 100_MBps;  // m4.large SSD-backed storage
  s.loopback_bw = 1000_MBps;
  s.num_storage_nodes = 3;
  s.congestion_penalty = 1.2;
  return s;
}

ClusterSpec ClusterSpec::three_node() {
  ClusterSpec s = paper_prototype();
  s.num_workers = 3;
  s.num_storage_nodes = 1;
  return s;
}

ClusterSpec ClusterSpec::paper_simulation() {
  ClusterSpec s;
  s.num_workers = 4000;
  s.executors_per_worker = 96;  // trace v2018 machines have 96 cores
  s.nic_bw_min = 100_Mbps;
  s.nic_bw_max = 2_Gbps;
  s.disk_bw = 80_MBps;
  s.loopback_bw = 2000_MBps;
  s.num_storage_nodes = 0;
  s.congestion_penalty = 1.2;
  return s;
}

ClusterSpec ClusterSpec::geo_two_sites() {
  ClusterSpec s = paper_prototype();
  s.num_sites = 2;
  s.wan_bw = 500_Mbps;
  return s;
}

Cluster::Cluster(Simulator& sim, const ClusterSpec& spec, std::uint64_t seed,
                 obs::Observability* obs)
    : sim_(sim), spec_(spec) {
  DS_CHECK(spec.num_workers > 0);
  DS_CHECK(spec.executors_per_worker > 0);
  DS_CHECK(spec.nic_bw_min > 0 && spec.nic_bw_max >= spec.nic_bw_min);
  DS_CHECK(spec.disk_bw > 0);
  DS_CHECK(spec.loopback_bw > 0);
  DS_CHECK(spec.num_storage_nodes >= 0);
  DS_CHECK(spec.num_sites >= 1);

  Rng rng(seed);
  std::vector<BytesPerSec> nic(static_cast<std::size_t>(spec.total_nodes()));
  for (auto& bw : nic) bw = rng.uniform(spec.nic_bw_min, spec.nic_bw_max);
  std::vector<int> site_of;
  if (spec.num_sites > 1) {
    site_of.resize(static_cast<std::size_t>(spec.total_nodes()));
    for (int i = 0; i < spec.total_nodes(); ++i)
      site_of[static_cast<std::size_t>(i)] = i % spec.num_sites;
  }
  fabric_ = std::make_unique<NetworkFabric>(sim, std::move(nic), spec.loopback_bw,
                                            spec.congestion_penalty,
                                            std::move(site_of), spec.wan_bw, obs);

  std::vector<int> slots(static_cast<std::size_t>(spec.num_workers),
                         spec.executors_per_worker);
  executors_ = std::make_unique<ExecutorPool>(sim, std::move(slots), obs);

  disks_.reserve(static_cast<std::size_t>(spec.total_nodes()));
  for (int i = 0; i < spec.total_nodes(); ++i) {
    disks_.push_back(std::make_unique<FairQueue>(sim, spec.disk_bw));
  }
  computing_.assign(static_cast<std::size_t>(spec.num_workers), 0);

  DS_CHECK(spec.node_speed_min > 0 && spec.node_speed_max >= spec.node_speed_min);
  speeds_.resize(static_cast<std::size_t>(spec.num_workers));
  for (auto& sp : speeds_) sp = rng.uniform(spec.node_speed_min, spec.node_speed_max);
}

double Cluster::speed(NodeId n) const {
  DS_CHECK_MSG(is_worker(n), "speed() on non-worker " << n);
  return speeds_[static_cast<std::size_t>(n)];
}

void Cluster::begin_compute(NodeId n) {
  DS_CHECK_MSG(is_worker(n), "begin_compute on non-worker " << n);
  auto& c = computing_[static_cast<std::size_t>(n)];
  DS_CHECK_MSG(c < spec_.executors_per_worker,
               "more computing tasks than executors on node " << n);
  ++c;
}

void Cluster::end_compute(NodeId n) {
  DS_CHECK_MSG(is_worker(n), "end_compute on non-worker " << n);
  auto& c = computing_[static_cast<std::size_t>(n)];
  DS_CHECK_MSG(c > 0, "end_compute with no computing tasks on node " << n);
  --c;
}

int Cluster::computing(NodeId n) const {
  DS_CHECK_MSG(is_worker(n), "computing() on non-worker " << n);
  return computing_[static_cast<std::size_t>(n)];
}

NodeId Cluster::worker(int i) const {
  DS_CHECK_MSG(i >= 0 && i < spec_.num_workers, "worker index " << i);
  return i;
}

NodeId Cluster::storage_node(int i) const {
  DS_CHECK_MSG(i >= 0 && i < spec_.num_storage_nodes, "storage index " << i);
  return spec_.num_workers + i;
}

}  // namespace ds::sim
