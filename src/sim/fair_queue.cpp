#include "sim/fair_queue.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ds::sim {

FairQueue::FairQueue(Simulator& sim, BytesPerSec capacity)
    : sim_(sim), capacity_(capacity), last_advance_(sim.now()) {
  DS_CHECK_MSG(capacity > 0, "FairQueue capacity must be positive");
}

FairQueue::~FairQueue() {
  if (pending_event_ != kInvalidEvent) sim_.cancel(pending_event_);
}

ClaimId FairQueue::submit(Bytes volume, std::function<void()> on_complete) {
  DS_CHECK_MSG(volume >= 0, "negative claim volume " << volume);
  advance_to_now();
  const ClaimId id = next_id_++;
  claims_.emplace(id, Claim{volume, std::move(on_complete)});
  reschedule();
  return id;
}

void FairQueue::cancel(ClaimId id) {
  advance_to_now();
  claims_.erase(id);
  reschedule();
}

BytesPerSec FairQueue::current_rate() const {
  return claims_.empty() ? 0 : capacity_;
}

BytesPerSec FairQueue::share() const {
  return claims_.empty() ? capacity_
                         : capacity_ / static_cast<double>(claims_.size());
}

void FairQueue::advance_to_now() {
  const SimTime now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0 || claims_.empty()) return;
  const BytesPerSec per_claim = capacity_ / static_cast<double>(claims_.size());
  for (auto& [id, claim] : claims_) {
    const Bytes used = std::min(claim.remaining, per_claim * dt);
    claim.remaining -= used;
    serviced_ += used;
  }
}

void FairQueue::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (claims_.empty()) return;
  const BytesPerSec per_claim = capacity_ / static_cast<double>(claims_.size());
  Seconds next = -1;
  for (const auto& [id, claim] : claims_) {
    const Seconds t = fluid_done(claim.remaining, per_claim)
                          ? 0.0
                          : claim.remaining / per_claim;
    if (next < 0 || t < next) next = t;
  }
  pending_event_ = sim_.schedule_after(next, [this] {
    pending_event_ = kInvalidEvent;
    on_completion_event();
  });
}

void FairQueue::on_completion_event() {
  advance_to_now();
  const BytesPerSec per_claim =
      claims_.empty() ? capacity_
                      : capacity_ / static_cast<double>(claims_.size());
  // Collect finished claims first (callbacks may submit new claims), sorted
  // by id so callback order never depends on hash-map layout.
  std::vector<std::pair<ClaimId, std::function<void()>>> done;
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (fluid_done(it->second.remaining, per_claim)) {
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = claims_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, fn] : done) {
    if (fn) fn();
  }
}

}  // namespace ds::sim
