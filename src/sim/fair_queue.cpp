#include "sim/fair_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ds::sim {

namespace {

inline ClaimId encode_claim(std::int32_t slot, std::uint32_t gen) {
  // Low word = slot + 1 so a live id is never 0.
  return (static_cast<ClaimId>(gen) << 32) |
         (static_cast<std::uint32_t>(slot) + 1);
}

}  // namespace

FairQueue::FairQueue(Simulator& sim, BytesPerSec capacity)
    : sim_(sim), capacity_(capacity), last_advance_(sim.now()) {
  DS_CHECK_MSG(capacity > 0, "FairQueue capacity must be positive");
}

FairQueue::~FairQueue() {
  if (pending_event_ != kInvalidEvent) sim_.cancel(pending_event_);
}

std::int32_t FairQueue::lookup(ClaimId id) const {
  const std::uint64_t low = id & 0xffffffffu;
  if (low == 0) return -1;
  const auto slot = static_cast<std::size_t>(low - 1);
  if (slot >= slab_.size()) return -1;
  const Claim& c = slab_[slot];
  if (!c.active || c.gen != static_cast<std::uint32_t>(id >> 32)) return -1;
  return static_cast<std::int32_t>(slot);
}

std::int32_t FairQueue::alloc_slot() {
  std::int32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Claim& c = slab_[static_cast<std::size_t>(slot)];
  c.active = true;
  c.prev = tail_;
  c.next = -1;
  if (tail_ >= 0) {
    slab_[static_cast<std::size_t>(tail_)].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  ++num_active_;
  return slot;
}

void FairQueue::free_slot(std::int32_t slot) {
  Claim& c = slab_[static_cast<std::size_t>(slot)];
  if (c.prev >= 0) {
    slab_[static_cast<std::size_t>(c.prev)].next = c.next;
  } else {
    head_ = c.next;
  }
  if (c.next >= 0) {
    slab_[static_cast<std::size_t>(c.next)].prev = c.prev;
  } else {
    tail_ = c.prev;
  }
  c.active = false;
  c.on_complete = nullptr;
  ++c.gen;
  free_slots_.push_back(slot);
  --num_active_;
}

ClaimId FairQueue::submit(Bytes volume, EventFn on_complete) {
  DS_CHECK_MSG(volume >= 0, "negative claim volume " << volume);
  advance_to_now();
  const std::int32_t slot = alloc_slot();
  Claim& c = slab_[static_cast<std::size_t>(slot)];
  c.remaining = volume;
  c.on_complete = std::move(on_complete);
  reschedule();
  return encode_claim(slot, c.gen);
}

void FairQueue::cancel(ClaimId id) {
  advance_to_now();
  const std::int32_t slot = lookup(id);
  if (slot >= 0) free_slot(slot);
  reschedule();
}

BytesPerSec FairQueue::current_rate() const {
  return num_active_ == 0 ? 0 : capacity_;
}

BytesPerSec FairQueue::share() const {
  return num_active_ == 0 ? capacity_
                          : capacity_ / static_cast<double>(num_active_);
}

void FairQueue::advance_to_now() {
  const SimTime now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0 || num_active_ == 0) return;
  const BytesPerSec per_claim = capacity_ / static_cast<double>(num_active_);
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    Claim& c = slab_[static_cast<std::size_t>(i)];
    const Bytes used = std::min(c.remaining, per_claim * dt);
    c.remaining -= used;
    serviced_ += used;
  }
}

void FairQueue::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (num_active_ == 0) return;
  const BytesPerSec per_claim = capacity_ / static_cast<double>(num_active_);
  Seconds next = -1;
  for (std::int32_t i = head_; i >= 0; i = slab_[static_cast<std::size_t>(i)].next) {
    const Claim& c = slab_[static_cast<std::size_t>(i)];
    const Seconds t =
        fluid_done(c.remaining, per_claim) ? 0.0 : c.remaining / per_claim;
    if (next < 0 || t < next) next = t;
  }
  pending_event_ = sim_.schedule_after(next, [this] {
    pending_event_ = kInvalidEvent;
    on_completion_event();
  });
}

void FairQueue::on_completion_event() {
  advance_to_now();
  const BytesPerSec per_claim =
      num_active_ == 0 ? capacity_ : capacity_ / static_cast<double>(num_active_);
  // Finished claims fire in submission order (the intrusive list order). The
  // scratch vector is detached while callbacks run — they may submit new
  // claims, which re-enters the queue.
  std::vector<EventFn> done = std::move(done_scratch_);
  done.clear();
  for (std::int32_t i = head_; i >= 0;) {
    Claim& c = slab_[static_cast<std::size_t>(i)];
    const std::int32_t next = c.next;
    if (fluid_done(c.remaining, per_claim)) {
      done.push_back(std::move(c.on_complete));
      free_slot(i);
    }
    i = next;
  }
  reschedule();
  for (EventFn& fn : done) {
    if (fn) fn();
  }
  done.clear();
  done_scratch_ = std::move(done);
}

}  // namespace ds::sim
