#include "sim/faults.h"

#include <algorithm>

#include "util/check.h"

namespace ds::sim {

FaultInjector::FaultInjector(Cluster& cluster, FaultPlan plan,
                             std::uint64_t seed)
    : cluster_(cluster), plan_(std::move(plan)), rng_(seed ^ kFaultSeedSalt) {
  alive_.assign(static_cast<std::size_t>(cluster_.total_nodes()), true);
  validate();
}

void FaultInjector::validate() const {
  for (const auto& c : plan_.crashes) {
    DS_CHECK_MSG(cluster_.is_worker(c.node),
                 "FaultPlan: crash target " << c.node
                                            << " is not a worker node");
    DS_CHECK_MSG(c.at >= 0, "FaultPlan: negative crash time");
  }
  for (const auto& d : plan_.degradations) {
    DS_CHECK_MSG(d.node >= 0 && d.node < cluster_.total_nodes(),
                 "FaultPlan: degradation node " << d.node << " out of range");
    DS_CHECK_MSG(d.factor > 0 && d.factor <= 1.0,
                 "FaultPlan: degradation factor must be in (0, 1]");
    DS_CHECK_MSG(d.from >= 0 && d.until > d.from,
                 "FaultPlan: degradation window must be well-formed");
  }
  DS_CHECK_MSG(plan_.crash_rate >= 0, "FaultPlan: negative crash_rate");
  DS_CHECK_MSG(plan_.crash_rate == 0 || plan_.crash_horizon > 0,
               "FaultPlan: stochastic crashes need a positive crash_horizon");
}

void FaultInjector::start() {
  DS_CHECK_MSG(!started_, "FaultInjector::start() called twice");
  started_ = true;
  Simulator& sim = cluster_.sim();

  // Expand the stochastic hazard into concrete crash events so the whole
  // run is a pure function of (plan, seed). Per worker: exponential gaps
  // between failures, exponential downtimes, nothing drawn while down.
  std::vector<NodeCrash> all = plan_.crashes;
  if (plan_.crash_rate > 0) {
    for (int w = 0; w < cluster_.num_workers(); ++w) {
      Seconds t = rng_.exponential(plan_.crash_rate);
      while (t < plan_.crash_horizon) {
        NodeCrash c;
        c.node = cluster_.worker(w);
        c.at = t;
        if (plan_.mean_downtime >= 0) {
          c.downtime = rng_.exponential(1.0 / std::max(plan_.mean_downtime,
                                                       Seconds{1e-9}));
          all.push_back(c);
          t += c.downtime + rng_.exponential(plan_.crash_rate);
        } else {
          all.push_back(c);  // permanent: this worker is done
          break;
        }
      }
    }
  }
  // Stable event order regardless of plan/draw order.
  std::sort(all.begin(), all.end(), [](const NodeCrash& a, const NodeCrash& b) {
    return a.at != b.at ? a.at < b.at : a.node < b.node;
  });
  expanded_ = all;

  for (const auto& c : all) {
    if (c.at < sim.now()) continue;
    sim.schedule_at(c.at, [this, c] { crash(c.node, c.downtime); });
  }
  for (const auto& d : plan_.degradations) {
    if (d.until <= sim.now()) continue;
    const Seconds from = std::max(d.from, sim.now());
    sim.schedule_at(from, [this, d] {
      if (alive(d.node)) cluster_.fabric().set_node_scale(d.node, d.factor);
    });
    sim.schedule_at(d.until, [this, d] {
      cluster_.fabric().set_node_scale(d.node, 1.0);
    });
  }
}

void FaultInjector::crash(NodeId n, Seconds downtime) {
  if (!alive(n)) return;  // overlapping plans: already down
  alive_[static_cast<std::size_t>(n)] = false;
  ++crashes_injected_;
  // Engines first (they unwind attempts against live accounting), then the
  // pool forfeits the node's slots.
  for (const auto& s : subscribers_) {
    if (s.on_crash) s.on_crash(n);
  }
  cluster_.executors().crash_node(n);
  if (downtime >= 0) {
    cluster_.sim().schedule_after(downtime, [this, n] { recover(n); });
  }
}

void FaultInjector::recover(NodeId n) {
  if (alive(n)) return;
  alive_[static_cast<std::size_t>(n)] = true;
  ++recoveries_;
  cluster_.executors().restore_node(n);
  for (const auto& s : subscribers_) {
    if (s.on_recover) s.on_recover(n);
  }
}

FaultInjector::SubscriptionId FaultInjector::subscribe(Handler on_crash,
                                                       Handler on_recover) {
  const SubscriptionId id = next_sub_++;
  subscribers_.push_back({id, std::move(on_crash), std::move(on_recover)});
  return id;
}

void FaultInjector::unsubscribe(SubscriptionId id) {
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->id == id) {
      subscribers_.erase(it);
      return;
    }
  }
}

}  // namespace ds::sim
