// Parallel simulation at cluster scale, two complementary shapes:
//
// 1. ShardedRunner — embarrassingly parallel ensembles. Each index builds a
//    fully independent simulated world (its own Simulator, fabric, engine)
//    and returns a result into a per-index slot; indices run across a
//    caller-participating ThreadPool. Because every world is self-contained
//    and the merge happens in index order, results are bit-identical for
//    every thread count, including 1. This is the right tool for replay
//    ensembles, seed sweeps, and per-failure-domain what-if runs — the
//    dominant "cluster-scale" workloads here, where jobs/scenarios are
//    independent by construction.
//
// 2. ShardedSimulation — conservative time-window synchronization for worlds
//    that *do* interact. K shards each own a private Simulator; simulated
//    time advances in lockstep windows [T, T + lookahead) where T is the
//    global minimum next-event time. Within a window shards run in parallel
//    and may post events to each other, but only at t >= sender-now +
//    lookahead — which is >= the window end, so no shard can receive an
//    event in its own past (the classic conservative-DES safety argument:
//    lookahead is the minimum cross-shard latency, here the network
//    propagation floor). At the window barrier all cross-shard messages are
//    drained in (time, from-shard, sequence) order into the destination
//    queues, making delivery order — and therefore the whole run —
//    deterministic regardless of thread count or barrier timing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/thread_pool.h"

namespace ds::sim {

// Deterministic ensemble executor. `threads <= 0` = hardware concurrency;
// a pool of size 1 runs everything inline on the caller.
class ShardedRunner {
 public:
  explicit ShardedRunner(int threads = 0) : pool_(threads) {}

  int threads() const { return pool_.size(); }

  // Run make(i) for every i in [0, n) across the pool; out[i] = make(i).
  // make must not touch state shared across indices (each index builds its
  // own world). Results are positioned by index, so any reduction done on
  // the returned vector is bit-identical for every thread count.
  template <typename T, typename Fn>
  std::vector<T> run(std::size_t n, Fn&& make) {
    std::vector<T> out(n);
    pool_.parallel_for(n, [&](std::size_t i) { out[i] = make(i); });
    return out;
  }

  ds::ThreadPool& pool() { return pool_; }

 private:
  ds::ThreadPool pool_;
};

// Conservative time-window coupling of K private Simulators.
class ShardedSimulation {
 public:
  struct Options {
    int shards = 1;
    // ThreadPool size for the per-window fan-out; <= 0 = hardware.
    int threads = 0;
    // Minimum cross-shard event latency (seconds). Posts from inside a
    // running window must target t >= sender-now + lookahead; larger values
    // mean wider windows and less synchronization overhead.
    Seconds lookahead = 1e-3;
  };

  explicit ShardedSimulation(Options opt);

  int shards() const { return static_cast<int>(sims_.size()); }
  Seconds lookahead() const { return opt_.lookahead; }
  Simulator& shard(int s) { return *sims_.at(static_cast<std::size_t>(s)); }
  const Simulator& shard(int s) const {
    return *sims_.at(static_cast<std::size_t>(s));
  }

  // Post `fn` to shard `to` at absolute time `t`. From inside a window
  // (i.e. from an event running on shard `from`) `t` must respect the
  // lookahead; from outside (setup code, between runs) any future time is
  // fine. Same-shard posts may use the shard's queue directly instead.
  void post(int from, int to, SimTime t, EventFn fn);

  // Advance every shard to global time `t` (windows of at most `lookahead`).
  void run_until(SimTime t);
  // Run until no shard has pending events and every mailbox is drained.
  // Returns the maximum shard time reached.
  SimTime run();

  // Total events processed across all shards.
  std::size_t events_processed() const;

 private:
  struct Message {
    SimTime t = 0;
    int from = 0;
    int to = 0;
    std::uint64_t seq = 0;
    EventFn fn;
  };
  // outbox_[from]: written only by shard `from` (single-threaded within a
  // window), drained only at barriers — no locking anywhere.
  struct Outbox {
    std::vector<Message> msgs;
    std::uint64_t next_seq = 0;
  };

  // Earliest pending work (next event over all shards + undelivered mail),
  // or -1 if fully idle.
  SimTime next_work_time() const;
  void deliver_all();
  void run_window(SimTime window_end);

  Options opt_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Outbox> outbox_;
  std::vector<Message> deliver_scratch_;
  ds::ThreadPool pool_;
  bool in_window_ = false;
};

}  // namespace ds::sim
