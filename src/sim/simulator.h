// Discrete-event simulator driver. Each Simulator instance is single-
// threaded by design — determinism and debuggability matter more here than
// intra-run speedup; cluster-scale throughput comes from running *many*
// instances in parallel (sim/sharded.h), one per shard, each owning its own
// Simulator. Callbacks are InlineFunction (see event_queue.h): the steady
// state allocates nothing per event.
#pragma once

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace ds::sim {

class Simulator {
 public:
  // `obs` (optional) receives the "sim.events" counter; must outlive the
  // simulator. Observability is passive — it never affects event order.
  explicit Simulator(obs::Observability* obs = nullptr)
      : events_counter_(obs::counter(obs, "sim.events")) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule at an absolute time (must be >= now()).
  EventId schedule_at(SimTime t, EventFn fn);
  // Schedule `dt` seconds from now (dt >= 0).
  EventId schedule_after(Seconds dt, EventFn fn);
  void cancel(EventId id);

  // Run until the event queue is empty. Returns the final time.
  SimTime run();
  // Run all events with time <= t, then set now() = t. Returns true if any
  // event fired.
  bool run_until(SimTime t);
  // Fire exactly one event if any is pending.
  bool step();

  std::size_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return queue_.size(); }
  // Time of the earliest pending event; only valid when events_pending() > 0.
  SimTime next_event_time() const { return queue_.next_time(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::size_t processed_ = 0;
  obs::Counter events_counter_;
};

}  // namespace ds::sim
