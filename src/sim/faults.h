// Failure-domain fault injection for the cluster simulator.
//
// A FaultPlan declares whole-node crashes (scheduled, or drawn from a
// per-worker Poisson hazard), optional recovery, and per-link network
// degradation windows. The FaultInjector turns the plan into simulator
// events and drives the mechanism layer:
//
//   crash    → node marked dead, its executor slots forfeited
//              (ExecutorPool::crash_node) and every subscriber notified so
//              engines can kill live attempts and invalidate the shuffle
//              output the node stored (Spark's dominant failure mode: a lost
//              node takes its map output with it, and downstream reads hit
//              *fetch failures* that force parent-stage re-execution).
//   recovery → node returns with all slots free and an empty disk — lost
//              shuffle output stays lost, exactly like a restarted executor.
//   degrade  → the node's access link (NIC egress+ingress) runs at
//              `factor` × its provisioned bandwidth for the window.
//
// Everything is expanded deterministically from the plan and the seed at
// start(): the same (plan, seed) pair yields the same crash times on every
// run, which keeps whole-job results byte-identical (see faults_test).
// The injector's RNG stream is derived from the caller's seed XORed with a
// fixed salt (kFaultSeedSalt), so passing the one CommonOptions::seed to
// both an engine and its injector yields *decorrelated* streams — the fault
// schedule is a pure function of (plan, seed) alone, bit-reproducible
// across runs and shard counts, and never entangled with the engine's
// per-task skew draws that consume the unsalted seed.
//
// Job-level semantics (which attempts die, which parent tasks re-run, when a
// job gives up) live in engine::JobRun; this module only owns node liveness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/cluster.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ds::sim {

// Salt XORed into the FaultInjector's RNG seed. Fixed forever: changing it
// changes every stochastic fault schedule.
inline constexpr std::uint64_t kFaultSeedSalt = 0xFA'17'5E'ED'0D'15'EA'5Eull;

// One scheduled whole-node failure. Only worker nodes may crash: storage
// (HDFS) nodes model a replicated, durable tier.
struct NodeCrash {
  NodeId node = -1;
  Seconds at = 0;
  // Downtime before the node rejoins with empty disks; < 0 = stays down.
  Seconds downtime = -1;
};

// A window during which one node's access link is degraded to
// `factor` × its provisioned NIC bandwidth (packet loss, a flapping ToR
// uplink, a throttled EBS client — anything that squeezes the pipe without
// killing the machine).
struct LinkDegradation {
  NodeId node = -1;
  Seconds from = 0;
  Seconds until = 0;
  double factor = 1.0;  // (0, 1]
};

struct FaultPlan {
  // Scheduled crashes, applied verbatim.
  std::vector<NodeCrash> crashes;
  // Link degradation windows, applied verbatim.
  std::vector<LinkDegradation> degradations;
  // Stochastic crashes: each worker fails as a Poisson process with this
  // hazard rate (crashes per node per second), drawn over [0, crash_horizon).
  double crash_rate = 0.0;
  Seconds crash_horizon = 0.0;
  // Mean of the exponential downtime for stochastic crashes; < 0 = crashed
  // nodes never come back.
  Seconds mean_downtime = -1.0;

  bool empty() const {
    return crashes.empty() && degradations.empty() && crash_rate <= 0;
  }
};

class FaultInjector {
 public:
  using Handler = std::function<void(NodeId)>;
  using SubscriptionId = std::uint64_t;

  // `seed` fixes the stochastic crash draw (internally salted with
  // kFaultSeedSalt — callers pass the same CommonOptions::seed they give
  // the engine and still get an independent stream); the cluster must
  // outlive the injector. Validates the plan eagerly (nodes in range,
  // workers only, well-formed windows).
  FaultInjector(Cluster& cluster, FaultPlan plan, std::uint64_t seed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Expand the plan into simulator events. Call once, before (or while) the
  // simulation runs; events earlier than sim().now() are dropped.
  void start();

  Cluster& cluster() { return cluster_; }
  const FaultPlan& plan() const { return plan_; }

  bool alive(NodeId n) const { return alive_.at(static_cast<std::size_t>(n)); }
  int crashes_injected() const { return crashes_injected_; }
  int recoveries() const { return recoveries_; }

  // The concrete crash schedule start() expanded from (plan, seed) —
  // scheduled crashes plus the stochastic draws, sorted by (at, node).
  // Valid after start(); what faults_test asserts bit-reproducible.
  const std::vector<NodeCrash>& expanded_crashes() const {
    return expanded_;
  }

  // Subscribe to crash/recovery notifications. On a crash, handlers run
  // *before* the executor pool forfeits the node's slots, so an engine can
  // unwind its attempts (end_compute, cancel flows/claims) while the node's
  // accounting still exists. `on_recover` may be null. Subscribers must
  // unsubscribe before they are destroyed.
  SubscriptionId subscribe(Handler on_crash, Handler on_recover = nullptr);
  void unsubscribe(SubscriptionId id);

 private:
  struct Subscriber {
    SubscriptionId id;
    Handler on_crash;
    Handler on_recover;
  };

  void validate() const;
  void crash(NodeId n, Seconds downtime);
  void recover(NodeId n);

  Cluster& cluster_;
  FaultPlan plan_;
  Rng rng_;
  bool started_ = false;
  std::vector<NodeCrash> expanded_;
  std::vector<bool> alive_;
  std::vector<Subscriber> subscribers_;
  SubscriptionId next_sub_ = 1;
  int crashes_injected_ = 0;
  int recoveries_ = 0;
};

}  // namespace ds::sim
