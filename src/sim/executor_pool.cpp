#include "sim/executor_pool.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ds::sim {

ExecutorPool::ExecutorPool(Simulator& sim, std::vector<int> slots_per_node,
                           obs::Observability* obs)
    : sim_(sim),
      slots_(std::move(slots_per_node)),
      requests_(obs::counter(obs, "exec.requests")),
      grants_(obs::counter(obs, "exec.grants")),
      queued_gauge_(obs::gauge(obs, "exec.queued")),
      wait_seconds_(obs::histogram(obs, "exec.wait_seconds",
                                   obs::exponential_buckets(0.1, 2.0, 20))) {
  DS_CHECK_MSG(!slots_.empty(), "executor pool needs at least one node");
  for (int s : slots_) DS_CHECK_MSG(s >= 0, "negative slot count");
  busy_.assign(slots_.size(), 0);
  offline_.assign(slots_.size(), false);
}

SlotRequestId ExecutorPool::request(GrantFn granted, NodeId pinned_node,
                                    int priority) {
  DS_CHECK(static_cast<bool>(granted));
  if (pinned_node >= 0)
    DS_CHECK_MSG(pinned_node < num_nodes(), "pinned node out of range");
  const SlotRequestId id = next_id_++;
  // Insert before the first waiter with a strictly larger priority value:
  // lowest priority first, FIFO within a level (ids ascend).
  auto it = waiters_.end();
  while (it != waiters_.begin() && std::prev(it)->priority > priority) --it;
  waiters_.insert(
      it, Waiter{id, std::move(granted), pinned_node, priority, sim_.now()});
  requests_.inc();
  queued_gauge_.set(static_cast<double>(waiters_.size()));
  pump();
  return id;
}

void ExecutorPool::cancel(SlotRequestId id) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->id == id) {
      waiters_.erase(it);
      queued_gauge_.set(static_cast<double>(waiters_.size()));
      return;
    }
  }
}

void ExecutorPool::release(NodeId node) {
  DS_CHECK_MSG(!offline(node), "release on offline node " << node);
  auto& b = busy_.at(static_cast<std::size_t>(node));
  DS_CHECK_MSG(b > 0, "release on node " << node << " with no busy slots");
  --b;
  pump();
}

void ExecutorPool::crash_node(NodeId node) {
  DS_CHECK_MSG(node >= 0 && node < num_nodes(), "crash_node out of range");
  DS_CHECK_MSG(!offline(node), "crash_node on already-offline node " << node);
  offline_[static_cast<std::size_t>(node)] = true;
  busy_[static_cast<std::size_t>(node)] = 0;
}

void ExecutorPool::restore_node(NodeId node) {
  DS_CHECK_MSG(node >= 0 && node < num_nodes(), "restore_node out of range");
  DS_CHECK_MSG(offline(node), "restore_node on live node " << node);
  DS_CHECK(busy_[static_cast<std::size_t>(node)] == 0);
  offline_[static_cast<std::size_t>(node)] = false;
  pump();
}

int ExecutorPool::total_slots() const {
  return std::accumulate(slots_.begin(), slots_.end(), 0);
}

int ExecutorPool::total_busy() const {
  return std::accumulate(busy_.begin(), busy_.end(), 0);
}

void ExecutorPool::pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  // Grants run as a zero-delay event: keeps the call stack flat when a
  // completion releases a slot that immediately feeds the next task.
  sim_.schedule_after(0, [this] {
    pump_scheduled_ = false;
    // Decide all grants first, then fire callbacks: a callback may re-enter
    // request()/release(), which must not invalidate our iteration. The
    // scratch vector is detached while callbacks run.
    std::vector<std::pair<GrantFn, NodeId>> grants = std::move(grants_scratch_);
    grants.clear();
    for (auto it = waiters_.begin(); it != waiters_.end();) {
      NodeId target = -1;
      if (it->pinned_node >= 0) {
        if (free_slots(it->pinned_node) > 0) target = it->pinned_node;
      } else {
        int best_free = 0;
        for (NodeId n = 0; n < num_nodes(); ++n) {
          if (free_slots(n) > best_free) {
            best_free = free_slots(n);
            target = n;
          }
        }
      }
      if (target < 0) {
        ++it;
        continue;
      }
      ++busy_[static_cast<std::size_t>(target)];
      grants_.inc();
      wait_seconds_.observe(sim_.now() - it->requested_at);
      grants.emplace_back(std::move(it->granted), target);
      it = waiters_.erase(it);
    }
    queued_gauge_.set(static_cast<double>(waiters_.size()));
    for (auto& [granted, node] : grants) granted(node);
    grants.clear();
    grants_scratch_ = std::move(grants);
  });
}

}  // namespace ds::sim
