// Fluid network fabric with max-min fair bandwidth sharing.
//
// Every node has a full-duplex NIC (egress and ingress capacities equal to
// its provisioned bandwidth) plus a fast loopback path for node-local reads.
// A remote flow consumes one unit of demand on the source's egress port and
// the destination's ingress port; flow rates are the max-min fair allocation
// over those ports (progressive water-filling), recomputed whenever a flow
// starts or finishes. This yields exactly the equal-share behaviour the
// paper's Eq. (1) assumes when parallel stages contend for a link, plus
// realistic incast when many reducers pull from one upstream node.
//
// Hot-path layout (this fabric is ~90% of engine-run time, so it follows the
// same discipline as the event core): flows live in a slab with an intrusive
// insertion-ordered list (handles are generation-tagged, cancel is O(1) and
// safe on stale ids), the water-filling works out of persistent scratch
// arenas (MaxMinScratch, flat CSR port->flow lists), and port capacities are
// cached between link-scale changes — the steady state allocates nothing per
// flow start/finish/cancel. Flow enumeration order is the insertion order,
// which also makes completion-callback order structurally deterministic
// (the old map-based fabric had to sort by id to get the same guarantee).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/units.h"

namespace ds::sim {

using NodeId = int;
using FlowId = std::uint64_t;

struct FlowSpec {
  NodeId src = 0;
  NodeId dst = 0;
  Bytes bytes = 0;
  // Contention group (typically the stage id). Ports serving flows from
  // multiple distinct groups lose aggregate efficiency (see group_penalty).
  // -1 = anonymous: all anonymous flows count as one group.
  int group = -1;
  EventFn on_complete;
};

// Max-min fair allocation: flow i uses the ports in flow_ports[i] (unused
// entries are -1); caps[p] is port p's capacity. Exposed standalone so tests
// can pin the allocator against hand-computed allocations.
using FlowPorts = std::array<int, 3>;
std::vector<double> max_min_allocate(const std::vector<FlowPorts>& flow_ports,
                                     const std::vector<double>& caps);

// Reusable arenas for the water-filling pass: flat CSR port->flow lists plus
// the per-iteration residual state. Callers that allocate once and reuse
// (the fabric) run the allocator with zero steady-state allocations.
struct MaxMinScratch {
  std::vector<double> rates;      // result, indexed like flow_ports
  std::vector<double> cap_rem;    // residual capacity per port
  std::vector<int> port_count;    // unfrozen flows per port
  std::vector<int> offset;        // CSR offsets (np + 1)
  std::vector<int> cursor;        // CSR fill cursors
  std::vector<int> items;         // CSR flow indices, ascending per port
  std::vector<int> used_ports;    // ports with any flow, ascending
  std::vector<char> frozen;       // per-flow
};

// Same algorithm and floating-point operation order as max_min_allocate,
// but every intermediate lives in `s` (result in s.rates).
void max_min_allocate_into(const std::vector<FlowPorts>& flow_ports,
                           const std::vector<double>& caps, MaxMinScratch& s);

class NetworkFabric {
 public:
  // `nic_bw[n]` is node n's NIC bandwidth (applied to both directions).
  // `loopback_bw` bounds node-local transfers (shared per node, max-min like
  // any other port); it models memory/local-disk read speed, not the NIC.
  //
  // `group_penalty` (β ≥ 0) models the throughput loss real networks and
  // storage servers suffer when *unrelated* transfer sets interleave on one
  // port (TCP incast collapse, interleaved disk service on the shuffle
  // source): a port carrying flows from g distinct groups serves an
  // effective capacity C / (1 + β·(g − 1)). β = 0 restores the ideal
  // work-conserving fabric. This is the non-work-conserving contention the
  // paper's motivation measures (Figs. 4-5) and DelayStage exploits.
  // `site_of[n]` (optional) assigns node n to a geo site; flows between
  // different sites additionally cross a per-site-pair WAN port of capacity
  // `wan_bw` — the geo-distributed setting §6 names as future work.
  // `obs` (optional) receives flow counters and the flow-duration/volume
  // histograms; must outlive the fabric.
  NetworkFabric(Simulator& sim, std::vector<BytesPerSec> nic_bw,
                BytesPerSec loopback_bw, double group_penalty = 0.0,
                std::vector<int> site_of = {}, BytesPerSec wan_bw = 0,
                obs::Observability* obs = nullptr);
  ~NetworkFabric();
  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  FlowId start_flow(FlowSpec spec);
  // Abort a flow without firing its completion callback. Stale or unknown
  // ids (already completed, already cancelled) are a safe no-op.
  void cancel(FlowId id);

  int num_nodes() const { return static_cast<int>(nic_bw_.size()); }
  std::size_t active_flows() const { return num_active_; }
  BytesPerSec nic_bw(NodeId n) const { return nic_bw_.at(static_cast<std::size_t>(n)); }
  // Sum of provisioned access-link bandwidth across all nodes — the fabric's
  // aggregate capacity, used by capacity ledgers (ds::service::ClusterLedger)
  // as the bandwidth budget against which job commitments are charged.
  BytesPerSec total_nic_bw() const {
    BytesPerSec total = 0.0;
    for (BytesPerSec bw : nic_bw_) total += bw;
    return total;
  }

  // Scale node n's access link (egress + ingress) to `factor` × its
  // provisioned bandwidth — the FaultInjector's degradation windows. Active
  // flows are re-allocated immediately; 1.0 restores full capacity.
  void set_node_scale(NodeId n, double factor);
  double node_scale(NodeId n) const {
    return link_scale_.empty() ? 1.0 : link_scale_.at(static_cast<std::size_t>(n));
  }

  // Instantaneous NIC throughput for metrics sampling (remote flows only —
  // loopback traffic never touches the NIC).
  BytesPerSec node_rx_rate(NodeId n) const;
  BytesPerSec node_tx_rate(NodeId n) const;
  // Total bytes delivered over the fabric so far (lazy; call sync() to get
  // an up-to-the-instant figure).
  Bytes total_delivered() const { return delivered_; }
  void sync() { advance_to_now(); }

 private:
  // Slab node: flow state + intrusive list links + handle generation.
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    Bytes remaining = 0;
    int group = -1;
    BytesPerSec rate = 0;
    EventFn on_complete;
    SimTime started = 0;  // for the flow-duration histogram
    std::uint32_t gen = 1;
    std::int32_t prev = -1;
    std::int32_t next = -1;
    bool active = false;
  };

  int egress_port(NodeId n) const { return n; }
  int ingress_port(NodeId n) const { return num_nodes() + n; }
  int loopback_port(NodeId n) const { return 2 * num_nodes() + n; }
  int site_of(NodeId n) const {
    return site_of_.empty() ? 0 : site_of_[static_cast<std::size_t>(n)];
  }
  int wan_port(int src_site, int dst_site) const {
    return 3 * num_nodes() + src_site * num_sites_ + dst_site;
  }
  std::size_t num_ports() const {
    return static_cast<std::size_t>(3 * num_nodes() + num_sites_ * num_sites_);
  }

  // Slot whose (slot, gen) matches `id`, or -1 for stale/unknown handles.
  std::int32_t lookup(FlowId id) const;
  std::int32_t alloc_slot();
  // Unlink + recycle; retires every outstanding handle to the slot.
  void free_slot(std::int32_t slot);

  void advance_to_now();
  void rebuild_caps();
  void reallocate();
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  std::vector<BytesPerSec> nic_bw_;
  std::vector<double> link_scale_;  // lazily sized; empty = all 1.0
  BytesPerSec loopback_bw_;
  double group_penalty_;
  std::vector<int> site_of_;
  BytesPerSec wan_bw_ = 0;
  int num_sites_ = 1;

  std::vector<Flow> slab_;
  std::vector<std::int32_t> free_slots_;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::size_t num_active_ = 0;

  SimTime last_advance_ = 0;
  EventId pending_event_ = kInvalidEvent;
  Bytes delivered_ = 0;

  // Persistent scratch (see header comment): rebuilt in place every
  // reallocation, never reallocated in steady state.
  std::vector<FlowPorts> sc_ports_;
  std::vector<std::int32_t> sc_slots_;
  std::vector<double> caps_base_;
  bool caps_dirty_ = true;
  std::vector<double> sc_caps_;
  std::vector<int> pg_count_, pg_offset_, pg_cursor_, pg_items_;
  MaxMinScratch mm_;
  std::vector<EventFn> done_scratch_;

  obs::Counter flows_started_;
  obs::Counter flows_completed_;
  obs::Gauge bytes_delivered_;
  obs::Histogram flow_seconds_;
  obs::Histogram flow_bytes_;
};

}  // namespace ds::sim
