// Fluid network fabric with max-min fair bandwidth sharing.
//
// Every node has a full-duplex NIC (egress and ingress capacities equal to
// its provisioned bandwidth) plus a fast loopback path for node-local reads.
// A remote flow consumes one unit of demand on the source's egress port and
// the destination's ingress port; flow rates are the max-min fair allocation
// over those ports (progressive water-filling), recomputed whenever a flow
// starts or finishes. This yields exactly the equal-share behaviour the
// paper's Eq. (1) assumes when parallel stages contend for a link, plus
// realistic incast when many reducers pull from one upstream node.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/units.h"

namespace ds::sim {

using NodeId = int;
using FlowId = std::uint64_t;

struct FlowSpec {
  NodeId src = 0;
  NodeId dst = 0;
  Bytes bytes = 0;
  // Contention group (typically the stage id). Ports serving flows from
  // multiple distinct groups lose aggregate efficiency (see group_penalty).
  // -1 = anonymous: all anonymous flows count as one group.
  int group = -1;
  std::function<void()> on_complete;
};

// Max-min fair allocation: flow i uses the ports in flow_ports[i] (unused
// entries are -1); caps[p] is port p's capacity. Exposed standalone so tests
// can pin the allocator against hand-computed allocations.
using FlowPorts = std::array<int, 3>;
std::vector<double> max_min_allocate(const std::vector<FlowPorts>& flow_ports,
                                     const std::vector<double>& caps);

class NetworkFabric {
 public:
  // `nic_bw[n]` is node n's NIC bandwidth (applied to both directions).
  // `loopback_bw` bounds node-local transfers (shared per node, max-min like
  // any other port); it models memory/local-disk read speed, not the NIC.
  //
  // `group_penalty` (β ≥ 0) models the throughput loss real networks and
  // storage servers suffer when *unrelated* transfer sets interleave on one
  // port (TCP incast collapse, interleaved disk service on the shuffle
  // source): a port carrying flows from g distinct groups serves an
  // effective capacity C / (1 + β·(g − 1)). β = 0 restores the ideal
  // work-conserving fabric. This is the non-work-conserving contention the
  // paper's motivation measures (Figs. 4-5) and DelayStage exploits.
  // `site_of[n]` (optional) assigns node n to a geo site; flows between
  // different sites additionally cross a per-site-pair WAN port of capacity
  // `wan_bw` — the geo-distributed setting §6 names as future work.
  // `obs` (optional) receives flow counters and the flow-duration/volume
  // histograms; must outlive the fabric.
  NetworkFabric(Simulator& sim, std::vector<BytesPerSec> nic_bw,
                BytesPerSec loopback_bw, double group_penalty = 0.0,
                std::vector<int> site_of = {}, BytesPerSec wan_bw = 0,
                obs::Observability* obs = nullptr);
  ~NetworkFabric();
  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  FlowId start_flow(FlowSpec spec);
  // Abort a flow without firing its completion callback. Unknown id: no-op.
  void cancel(FlowId id);

  int num_nodes() const { return static_cast<int>(nic_bw_.size()); }
  std::size_t active_flows() const { return flows_.size(); }
  BytesPerSec nic_bw(NodeId n) const { return nic_bw_.at(static_cast<std::size_t>(n)); }

  // Scale node n's access link (egress + ingress) to `factor` × its
  // provisioned bandwidth — the FaultInjector's degradation windows. Active
  // flows are re-allocated immediately; 1.0 restores full capacity.
  void set_node_scale(NodeId n, double factor);
  double node_scale(NodeId n) const {
    return link_scale_.empty() ? 1.0 : link_scale_.at(static_cast<std::size_t>(n));
  }

  // Instantaneous NIC throughput for metrics sampling (remote flows only —
  // loopback traffic never touches the NIC).
  BytesPerSec node_rx_rate(NodeId n) const;
  BytesPerSec node_tx_rate(NodeId n) const;
  // Total bytes delivered over the fabric so far (lazy; call sync() to get
  // an up-to-the-instant figure).
  Bytes total_delivered() const { return delivered_; }
  void sync() { advance_to_now(); }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    Bytes remaining;
    int group;
    BytesPerSec rate = 0;
    std::function<void()> on_complete;
    SimTime started = 0;  // for the flow-duration histogram
  };

  int egress_port(NodeId n) const { return n; }
  int ingress_port(NodeId n) const { return num_nodes() + n; }
  int loopback_port(NodeId n) const { return 2 * num_nodes() + n; }
  int site_of(NodeId n) const {
    return site_of_.empty() ? 0 : site_of_[static_cast<std::size_t>(n)];
  }
  int wan_port(int src_site, int dst_site) const {
    return 3 * num_nodes() + src_site * num_sites_ + dst_site;
  }

  void advance_to_now();
  void reallocate();
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  std::vector<BytesPerSec> nic_bw_;
  std::vector<double> link_scale_;  // lazily sized; empty = all 1.0
  BytesPerSec loopback_bw_;
  double group_penalty_;
  std::vector<int> site_of_;
  BytesPerSec wan_bw_ = 0;
  int num_sites_ = 1;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  SimTime last_advance_ = 0;
  EventId pending_event_ = kInvalidEvent;
  Bytes delivered_ = 0;
  obs::Counter flows_started_;
  obs::Counter flows_completed_;
  obs::Gauge bytes_delivered_;
  obs::Histogram flow_seconds_;
  obs::Histogram flow_bytes_;
};

}  // namespace ds::sim
