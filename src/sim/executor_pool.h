// Discrete executor slots (the cluster's CPU resource). Spark-style: a fixed
// number of executors per worker; waiting tasks are granted slots FIFO, each
// grant choosing the worker with the most free slots (load-balanced
// placement, which is also what the paper's Fuxi baseline does).
//
// Failure domains: a node can be taken offline (crash_node) — its slots stop
// being granted and any held slots are forfeited wholesale; restore_node
// brings it back empty. Slot holders must stop treating their grants as valid
// before crash_node runs (the FaultInjector notifies engines first).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/inline_function.h"

namespace ds::sim {

using SlotRequestId = std::uint64_t;

// Grant callbacks use the same small-buffer-optimized callable as the event
// core: no per-request allocation as long as captures fit the inline buffer.
using GrantFn = util::InlineFunction<void(NodeId), kEventFnCapacity>;

class ExecutorPool {
 public:
  // `obs` (optional) receives slot request/grant counters, the queue-depth
  // gauge and the slot-wait histogram; must outlive the pool.
  ExecutorPool(Simulator& sim, std::vector<int> slots_per_node,
               obs::Observability* obs = nullptr);

  // Request one slot; `granted(node)` fires (via a zero-delay event) once a
  // slot is available. Waiters are served lowest `priority` first, FIFO
  // within a priority level (Spark's FIFO pool generalised — stage
  // priorities let Graphene-style critical-path-first scheduling reorder the
  // queue). Optionally restrict to a single node with `pinned_node` >= 0.
  SlotRequestId request(GrantFn granted, NodeId pinned_node = -1,
                        int priority = 0);
  // Drop a queued request. No-op if it was already granted or unknown.
  void cancel(SlotRequestId id);

  // Return a slot on `node` previously granted.
  void release(NodeId node);

  // Take `node` offline: its busy count is forfeited (the node is gone, the
  // slots die with it) and no further grants target it. Holders must already
  // have abandoned their grants — release() on an offline node is an error.
  void crash_node(NodeId node);
  // Bring a crashed node back with all slots free.
  void restore_node(NodeId node);
  bool offline(NodeId node) const {
    return offline_.at(static_cast<std::size_t>(node));
  }

  int num_nodes() const { return static_cast<int>(slots_.size()); }
  int slots(NodeId node) const { return slots_.at(static_cast<std::size_t>(node)); }
  int busy(NodeId node) const { return busy_.at(static_cast<std::size_t>(node)); }
  int free_slots(NodeId node) const {
    return offline(node) ? 0 : slots(node) - busy(node);
  }
  int total_slots() const;
  int total_busy() const;
  // Slots a new job could be granted right now (offline nodes excluded).
  int total_free() const { return total_slots() - total_busy(); }
  std::size_t queued() const { return waiters_.size(); }

 private:
  struct Waiter {
    SlotRequestId id;
    GrantFn granted;
    NodeId pinned_node;
    int priority;
    SimTime requested_at;  // for the slot-wait histogram
  };

  void pump();  // grant as many waiters as free slots allow

  Simulator& sim_;
  std::vector<int> slots_;
  std::vector<int> busy_;
  std::vector<bool> offline_;
  std::deque<Waiter> waiters_;
  SlotRequestId next_id_ = 1;
  bool pump_scheduled_ = false;
  std::vector<std::pair<GrantFn, NodeId>> grants_scratch_;
  obs::Counter requests_;
  obs::Counter grants_;
  obs::Gauge queued_gauge_;
  obs::Histogram wait_seconds_;
};

}  // namespace ds::sim
