#include "sched/strategy.h"

#include <algorithm>
#include <numeric>

#include "core/perf_model.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "util/check.h"

namespace ds::sched {

engine::SubmissionPlan CriticalPathFirstStrategy::plan(
    const dag::JobDag& dag, const sim::ClusterSpec& spec) {
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::PerfModel model(profile);

  // Longest solo-time path from each stage to a sink (inclusive).
  const auto n = static_cast<std::size_t>(dag.num_stages());
  std::vector<Seconds> downstream(n, 0);
  const auto topo = dag.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::StageId s = *it;
    Seconds best = 0;
    for (dag::StageId c : dag.children(s))
      best = std::max(best, downstream[static_cast<std::size_t>(c)]);
    downstream[static_cast<std::size_t>(s)] = best + model.solo_time(s);
  }

  // Rank stages: longest downstream path -> priority 0 (served first).
  std::vector<dag::StageId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](dag::StageId a, dag::StageId b) {
                     return downstream[static_cast<std::size_t>(a)] >
                            downstream[static_cast<std::size_t>(b)];
                   });
  engine::SubmissionPlan p;
  p.priority.assign(n, 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    p.priority[static_cast<std::size_t>(order[rank])] = static_cast<int>(rank);
  return p;
}

engine::SubmissionPlan DelayStageStrategy::plan(const dag::JobDag& dag,
                                                const sim::ClusterSpec& spec) {
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::DelayCalculator calc(profile, options_);
  last_ = calc.compute();
  return core::StageDelayer(last_).plan();
}

engine::SubmissionPlan DelayStageStrategy::plan(const dag::JobDag& dag,
                                                const sim::Cluster& cluster) {
  const core::JobProfile profile = core::JobProfile::from_measured(dag, cluster);
  const core::DelayCalculator calc(profile, options_);
  last_ = calc.compute();
  return core::StageDelayer(last_).plan();
}

core::CalculatorOptions co_optimized(core::CalculatorOptions options,
                                     const engine::RunOptions& run) {
  options.model.speculation = run.speculation;
  options.model.speculation_threshold = run.speculation_threshold;
  return options;
}

std::unique_ptr<Strategy> make_strategy(const std::string& name) {
  if (name == "Spark") return std::make_unique<StockSparkStrategy>();
  if (name == "AggShuffle") return std::make_unique<AggShuffleStrategy>();
  if (name == "Fuxi") return std::make_unique<FuxiStrategy>();
  if (name == "CriticalPathFirst")
    return std::make_unique<CriticalPathFirstStrategy>();
  if (name == "DelayStage") return std::make_unique<DelayStageStrategy>();
  if (name == "random DelayStage") {
    core::CalculatorOptions o;
    o.order = core::PathOrder::kRandom;
    return std::make_unique<DelayStageStrategy>(o);
  }
  if (name == "ascending DelayStage") {
    core::CalculatorOptions o;
    o.order = core::PathOrder::kAscending;
    return std::make_unique<DelayStageStrategy>(o);
  }
  DS_CHECK_MSG(false, "unknown strategy '" << name << "'");
  return nullptr;
}

}  // namespace ds::sched
