// Stage-scheduling strategies: each turns a job DAG + cluster spec into a
// SubmissionPlan for the execution engine. These are the systems compared in
// the paper's evaluation (§5.1 "Baselines", §5.3).
#pragma once

#include <memory>
#include <string>

#include "core/delay_calculator.h"
#include "dag/job.h"
#include "engine/job_run.h"
#include "engine/plan.h"
#include "sim/cluster.h"

namespace ds::sched {

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  // Plan from nominal cluster provisioning (spec-level knowledge).
  virtual engine::SubmissionPlan plan(const dag::JobDag& dag,
                                      const sim::ClusterSpec& spec) = 0;
  // Plan against a live cluster: strategies that profile (DelayStage's
  // netperf/iotop step, §4.2) use the measured per-node bandwidths. Default:
  // same as the nominal plan.
  virtual engine::SubmissionPlan plan(const dag::JobDag& dag,
                                      const sim::Cluster& cluster) {
    return plan(dag, cluster.spec());
  }
};

// The stock Spark scheduler: submit every stage the moment it has acquired
// all of its shuffle input (zero delays, no pipelining).
class StockSparkStrategy final : public Strategy {
 public:
  std::string name() const override { return "Spark"; }
  engine::SubmissionPlan plan(const dag::JobDag&, const sim::ClusterSpec&) override {
    return {};
  }
};

// AggShuffle (Liu et al., ICDCS'17): proactively transfers map output toward
// the reduce side as map tasks complete, pipelining the shuffle over the
// network. Network-only optimisation; stages are never delayed.
class AggShuffleStrategy final : public Strategy {
 public:
  std::string name() const override { return "AggShuffle"; }
  engine::SubmissionPlan plan(const dag::JobDag&, const sim::ClusterSpec&) override {
    engine::SubmissionPlan p;
    p.pipelined_shuffle = true;
    return p;
  }
};

// Alibaba Fuxi (VLDB'14) as characterised in §5.3: balances task execution
// uniformly across workers but submits stages immediately. Our engine's
// default placement is already load-balanced, so Fuxi is behaviourally the
// stock plan — kept as a distinct strategy because the trace experiments
// (Fig. 14, Table 4) report it by name.
class FuxiStrategy final : public Strategy {
 public:
  std::string name() const override { return "Fuxi"; }
  engine::SubmissionPlan plan(const dag::JobDag&, const sim::ClusterSpec&) override {
    return {};
  }
};

// Graphene-style critical-path-first baseline: no delays, but stages with
// the longest remaining (downstream) path win contended executor slots
// first. Optimises stage *placement order*, not launch time — the axis of
// related work DelayStage is orthogonal to (§6).
class CriticalPathFirstStrategy final : public Strategy {
 public:
  std::string name() const override { return "CriticalPathFirst"; }
  engine::SubmissionPlan plan(const dag::JobDag& dag,
                              const sim::ClusterSpec& spec) override;
};

// DelayStage: run Algorithm 1 and apply the computed delays.
class DelayStageStrategy final : public Strategy {
 public:
  explicit DelayStageStrategy(core::CalculatorOptions options = {})
      : options_(options) {}

  std::string name() const override {
    switch (options_.order) {
      case core::PathOrder::kDescending: return "DelayStage";
      case core::PathOrder::kRandom: return "random DelayStage";
      case core::PathOrder::kAscending: return "ascending DelayStage";
    }
    return "DelayStage";
  }

  engine::SubmissionPlan plan(const dag::JobDag& dag,
                              const sim::ClusterSpec& spec) override;
  engine::SubmissionPlan plan(const dag::JobDag& dag,
                              const sim::Cluster& cluster) override;

  // Schedule computed by the most recent plan() call (for reporting).
  const core::DelaySchedule& last_schedule() const { return last_; }

 private:
  core::CalculatorOptions options_;
  core::DelaySchedule last_;
};

// Factory used by benches/examples to iterate over the paper's line-up.
std::unique_ptr<Strategy> make_strategy(const std::string& name);

// Co-optimize the planner's straggler model with the engine's speculation
// policy: when the run will speculate, the planner should predict with the
// same capped straggler factor the engine will actually realise (and with
// the matching threshold) rather than the uncapped extreme-value tail.
// Returns `options` with the model's speculation knobs aligned to `run`'s.
// Everything else (quantile target included) passes through unchanged.
core::CalculatorOptions co_optimized(core::CalculatorOptions options,
                                     const engine::RunOptions& run);

}  // namespace ds::sched
