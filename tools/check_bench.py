#!/usr/bin/env python3
"""Throughput regression gate.

Runs a benchmark binary that writes a BENCH_*.json (bench_planner_throughput,
bench_obs_overhead, bench_sim_throughput) — or takes an existing json — and
compares it against the committed conservative baseline. A throughput metric
more than --slack (default 20%) below its baseline floor fails the check.

The baseline floors are deliberately pessimistic (about half of what a loaded
single-core CI box measures) so the gate only trips on real regressions —
e.g. losing the fast-forward path or the incremental scan — not on scheduler
noise.

Usage:
  check_bench.py --bench build/bench/bench_planner_throughput
  check_bench.py --json BENCH_planner.json [--baseline tools/bench_baseline.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_json(path, what):
    """Read a JSON file, dying with a clear one-line message on any problem."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(
            f"error: {what} file '{path}' does not exist — "
            "did the benchmark run and write its output?"
        )
    except json.JSONDecodeError as e:
        sys.exit(f"error: {what} file '{path}' is not valid JSON: {e}")
    except OSError as e:
        sys.exit(f"error: cannot read {what} file '{path}': {e}")


def field(entry, key, context):
    """entry[key], dying with the offending record instead of a KeyError."""
    if key not in entry:
        sys.exit(
            f"error: {context} record is missing key '{key}' "
            f"(record: {json.dumps(entry)}) — benchmark output format changed?"
        )
    return entry[key]


def load_results(args):
    if args.json:
        return load_json(args.json, "results")
    if not args.bench:
        sys.exit("error: need --bench <binary> or --json <results.json>")
    bench = os.path.abspath(args.bench)
    if not os.path.exists(bench):
        sys.exit(f"error: benchmark binary '{bench}' does not exist")
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_planner.json")
        try:
            subprocess.run([bench, out], check=True)
        except subprocess.CalledProcessError as e:
            sys.exit(f"error: benchmark '{bench}' exited with {e.returncode}")
        return load_json(out, "benchmark output")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", help="bench_planner_throughput binary to run")
    ap.add_argument("--json", help="existing BENCH_planner.json to check")
    ap.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "bench_baseline.json"),
    )
    ap.add_argument(
        "--slack",
        type=float,
        default=0.20,
        help="allowed fraction below the baseline floor (default 0.20)",
    )
    args = ap.parse_args()

    results = load_results(args)
    baseline = load_json(args.baseline, "baseline")

    failures = []
    checked = 0

    def check(name, measured, floor):
        nonlocal checked
        checked += 1
        limit = floor * (1.0 - args.slack)
        ok = measured >= limit
        print(
            f"{'ok  ' if ok else 'FAIL'} {name}: {measured:.1f} "
            f"(floor {floor:.1f}, limit {limit:.1f})"
        )
        if not ok:
            failures.append(name)

    def check_ceiling(name, measured, ceiling):
        nonlocal checked
        checked += 1
        # Mirror image of check(): the measurement may sit up to --slack
        # above the committed ceiling before the gate trips.
        limit = ceiling * (1.0 + args.slack)
        ok = measured <= limit
        print(
            f"{'ok  ' if ok else 'FAIL'} {name}: {measured:.2f} "
            f"(ceiling {ceiling:.2f}, limit {limit:.2f})"
        )
        if not ok:
            failures.append(name)

    plan_floors = baseline.get("planner_evals_per_sec", {})
    for entry in results.get("planner", []):
        if field(entry, "threads", "planner") != 1:
            continue  # floors are calibrated for the single-thread path
        workload = field(entry, "workload", "planner")
        floor = plan_floors.get(workload)
        if floor is not None:
            check(
                f"planner[{workload}] evals/s",
                field(entry, "evals_per_sec", "planner"),
                floor,
            )

    replay_floor = baseline.get("replay_jobs_per_sec")
    for entry in results.get("replay", []):
        if field(entry, "threads", "replay") == 1 and replay_floor is not None:
            check("replay jobs/s", field(entry, "jobs_per_sec", "replay"), replay_floor)

    obs_entries = {field(e, "mode", "obs"): e for e in results.get("obs", [])}
    off_floor = baseline.get("obs_runs_per_sec_off")
    if off_floor is not None and "off" in obs_entries:
        check(
            "obs[off] runs/s",
            field(obs_entries["off"], "runs_per_sec", "obs"),
            off_floor,
        )
    for mode, ceiling in baseline.get("obs_overhead_max_pct", {}).items():
        if mode in obs_entries:
            check_ceiling(
                f"obs[{mode}] overhead %",
                field(obs_entries[mode], "overhead_pct", "obs"),
                ceiling,
            )

    queue_floors = baseline.get("sim_queue_events_per_sec", {})
    for entry in results.get("queue", []):
        scenario = field(entry, "scenario", "queue")
        floor = queue_floors.get(scenario)
        if floor is not None:
            check(
                f"queue[{scenario}] events/s",
                field(entry, "events_per_sec", "queue"),
                floor,
            )

    engine_floor = baseline.get("engine_events_per_sec")
    for entry in results.get("engine", []):
        # Floors are calibrated for the 1-shard path; multi-shard speedup is
        # informational (CI containers may have a single core).
        if field(entry, "shards", "engine") == 1 and engine_floor is not None:
            check(
                "engine[1 shard] events/s",
                field(entry, "engine_events_per_sec", "engine"),
                engine_floor,
            )

    ereplay_floor = baseline.get("engine_replay_jobs_per_sec")
    for entry in results.get("engine_replay", []):
        if field(entry, "shards", "engine_replay") == 1 and ereplay_floor is not None:
            check(
                "engine_replay[1 shard] jobs/s",
                field(entry, "jobs_per_sec", "engine_replay"),
                ereplay_floor,
            )

    adaptive_floors = baseline.get("adaptive_min_gain_pct", {})
    for entry in results.get("adaptive", []):
        scenario = field(entry, "scenario", "adaptive")
        mode = field(entry, "mode", "adaptive")
        if mode != "calibrated_replan":
            continue  # the gate judges the full adaptive stack
        if scenario == "accurate":
            # Identity contract, not a throughput floor: an accurate profile
            # must yield bit-identical JCT (gain exactly 0) and zero replans.
            checked += 1
            gain = field(entry, "gain_pct", "adaptive")
            replans = field(entry, "replans", "adaptive")
            ok = gain == 0.0 and replans == 0
            print(
                f"{'ok  ' if ok else 'FAIL'} adaptive[accurate] identity: "
                f"gain {gain}%, {replans} replan(s) (both must be 0)"
            )
            if not ok:
                failures.append("adaptive[accurate] identity")
            continue
        floor = adaptive_floors.get(scenario)
        if floor is not None:
            check(
                f"adaptive[{scenario}] gain %",
                field(entry, "gain_pct", "adaptive"),
                floor,
            )

    multijob_floors = baseline.get("multijob_min_gain_pct", {})
    for entry in results.get("multijob", []):
        intensity = field(entry, "intensity", "multijob")
        floors = multijob_floors.get(intensity)
        if floors is None:
            continue
        # Deterministic simulated-time gains: the floors gate scheduler
        # behaviour (DelayStage must keep beating the no-delay baseline on
        # mean JCT and p99 slowdown), not machine speed.
        if "jct" in floors:
            check(
                f"multijob[{intensity}] JCT gain %",
                field(entry, "jct_gain_pct", "multijob"),
                floors["jct"],
            )
        if "slowdown" in floors:
            check(
                f"multijob[{intensity}] p99 slowdown gain %",
                field(entry, "slowdown_gain_pct", "multijob"),
                floors["slowdown"],
            )

    service_floors = baseline.get("plan_service_plans_per_sec", {})
    for entry in results.get("plan_service", []):
        mode = field(entry, "mode", "plan_service")
        floor = service_floors.get(mode)
        if floor is not None:
            check(
                f"plan_service[{mode}] plans/s",
                field(entry, "plans_per_sec", "plan_service"),
                floor,
            )
    speedup_floor = baseline.get("plan_service_min_warm_speedup")
    if speedup_floor is not None and "plan_service_warm_speedup" in results:
        check(
            "plan_service warm/cold speedup",
            results["plan_service_warm_speedup"],
            speedup_floor,
        )

    if checked == 0:
        known = (
            "planner",
            "replay",
            "obs",
            "queue",
            "engine",
            "engine_replay",
            "adaptive",
            "plan_service",
            "multijob",
        )
        present = [k for k in known if results.get(k)]
        sys.exit(
            "error: no metrics matched the baseline — results contain "
            f"section(s) {present or 'none'} but the baseline has no floors "
            "for them (new benchmark? add floors to tools/bench_baseline.json)"
        )
    if failures:
        print(f"\n{len(failures)} metric(s) regressed >"
              f"{100 * args.slack:.0f}% below baseline: {', '.join(failures)}")
        return 1
    print(f"\nall {checked} metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
