# Empty dependencies file for bench_fig11_stage_breakdown.
# This may be replaced when dependencies are built.
