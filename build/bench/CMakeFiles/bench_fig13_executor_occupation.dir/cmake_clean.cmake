file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_executor_occupation.dir/bench_fig13_executor_occupation.cpp.o"
  "CMakeFiles/bench_fig13_executor_occupation.dir/bench_fig13_executor_occupation.cpp.o.d"
  "bench_fig13_executor_occupation"
  "bench_fig13_executor_occupation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_executor_occupation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
