# Empty compiler generated dependencies file for bench_fig13_executor_occupation.
# This may be replaced when dependencies are built.
