# Empty dependencies file for bench_ablation_path_order.
# This may be replaced when dependencies are built.
