file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_trace_jct.dir/bench_fig14_trace_jct.cpp.o"
  "CMakeFiles/bench_fig14_trace_jct.dir/bench_fig14_trace_jct.cpp.o.d"
  "bench_fig14_trace_jct"
  "bench_fig14_trace_jct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_trace_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
