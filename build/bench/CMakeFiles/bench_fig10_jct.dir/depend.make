# Empty dependencies file for bench_fig10_jct.
# This may be replaced when dependencies are built.
