file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_jct.dir/bench_fig10_jct.cpp.o"
  "CMakeFiles/bench_fig10_jct.dir/bench_fig10_jct.cpp.o.d"
  "bench_fig10_jct"
  "bench_fig10_jct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
