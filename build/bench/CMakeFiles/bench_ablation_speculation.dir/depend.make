# Empty dependencies file for bench_ablation_speculation.
# This may be replaced when dependencies are built.
