file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_stage_breakdown_appendix.dir/bench_fig16_stage_breakdown_appendix.cpp.o"
  "CMakeFiles/bench_fig16_stage_breakdown_appendix.dir/bench_fig16_stage_breakdown_appendix.cpp.o.d"
  "bench_fig16_stage_breakdown_appendix"
  "bench_fig16_stage_breakdown_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_stage_breakdown_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
