# Empty compiler generated dependencies file for bench_fig16_stage_breakdown_appendix.
# This may be replaced when dependencies are built.
