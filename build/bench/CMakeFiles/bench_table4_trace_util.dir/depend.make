# Empty dependencies file for bench_table4_trace_util.
# This may be replaced when dependencies are built.
