file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multijob.dir/bench_ablation_multijob.cpp.o"
  "CMakeFiles/bench_ablation_multijob.dir/bench_ablation_multijob.cpp.o.d"
  "bench_ablation_multijob"
  "bench_ablation_multijob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multijob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
