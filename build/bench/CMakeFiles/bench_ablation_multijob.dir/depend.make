# Empty dependencies file for bench_ablation_multijob.
# This may be replaced when dependencies are built.
