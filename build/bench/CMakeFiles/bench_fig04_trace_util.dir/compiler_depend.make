# Empty compiler generated dependencies file for bench_fig04_trace_util.
# This may be replaced when dependencies are built.
