# Empty compiler generated dependencies file for bench_fig03_makespan_share.
# This may be replaced when dependencies are built.
