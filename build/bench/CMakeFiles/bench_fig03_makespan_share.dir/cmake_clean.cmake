file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_makespan_share.dir/bench_fig03_makespan_share.cpp.o"
  "CMakeFiles/bench_fig03_makespan_share.dir/bench_fig03_makespan_share.cpp.o.d"
  "bench_fig03_makespan_share"
  "bench_fig03_makespan_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_makespan_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
