# Empty compiler generated dependencies file for bench_fig12_util_timeseries.
# This may be replaced when dependencies are built.
