# Empty compiler generated dependencies file for bench_fig17_util_timeseries_appendix.
# This may be replaced when dependencies are built.
