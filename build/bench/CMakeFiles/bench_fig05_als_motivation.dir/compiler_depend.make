# Empty compiler generated dependencies file for bench_fig05_als_motivation.
# This may be replaced when dependencies are built.
