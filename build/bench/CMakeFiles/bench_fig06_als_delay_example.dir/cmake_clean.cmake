file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_als_delay_example.dir/bench_fig06_als_delay_example.cpp.o"
  "CMakeFiles/bench_fig06_als_delay_example.dir/bench_fig06_als_delay_example.cpp.o.d"
  "bench_fig06_als_delay_example"
  "bench_fig06_als_delay_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_als_delay_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
