# Empty dependencies file for bench_fig06_als_delay_example.
# This may be replaced when dependencies are built.
