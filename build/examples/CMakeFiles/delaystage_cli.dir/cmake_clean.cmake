file(REMOVE_RECURSE
  "CMakeFiles/delaystage_cli.dir/delaystage_cli.cpp.o"
  "CMakeFiles/delaystage_cli.dir/delaystage_cli.cpp.o.d"
  "delaystage_cli"
  "delaystage_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delaystage_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
