# Empty dependencies file for delaystage_cli.
# This may be replaced when dependencies are built.
