# Empty compiler generated dependencies file for spark_cluster_sim.
# This may be replaced when dependencies are built.
