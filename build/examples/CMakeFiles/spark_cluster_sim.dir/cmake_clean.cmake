file(REMOVE_RECURSE
  "CMakeFiles/spark_cluster_sim.dir/spark_cluster_sim.cpp.o"
  "CMakeFiles/spark_cluster_sim.dir/spark_cluster_sim.cpp.o.d"
  "spark_cluster_sim"
  "spark_cluster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
