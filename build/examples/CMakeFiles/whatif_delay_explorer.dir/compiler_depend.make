# Empty compiler generated dependencies file for whatif_delay_explorer.
# This may be replaced when dependencies are built.
