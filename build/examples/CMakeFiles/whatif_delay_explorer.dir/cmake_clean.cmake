file(REMOVE_RECURSE
  "CMakeFiles/whatif_delay_explorer.dir/whatif_delay_explorer.cpp.o"
  "CMakeFiles/whatif_delay_explorer.dir/whatif_delay_explorer.cpp.o.d"
  "whatif_delay_explorer"
  "whatif_delay_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_delay_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
