# Empty dependencies file for geo_distributed.
# This may be replaced when dependencies are built.
