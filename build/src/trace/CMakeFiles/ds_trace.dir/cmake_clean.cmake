file(REMOVE_RECURSE
  "CMakeFiles/ds_trace.dir/alibaba.cpp.o"
  "CMakeFiles/ds_trace.dir/alibaba.cpp.o.d"
  "CMakeFiles/ds_trace.dir/replay.cpp.o"
  "CMakeFiles/ds_trace.dir/replay.cpp.o.d"
  "CMakeFiles/ds_trace.dir/stats.cpp.o"
  "CMakeFiles/ds_trace.dir/stats.cpp.o.d"
  "CMakeFiles/ds_trace.dir/synthetic.cpp.o"
  "CMakeFiles/ds_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/ds_trace.dir/trace.cpp.o"
  "CMakeFiles/ds_trace.dir/trace.cpp.o.d"
  "libds_trace.a"
  "libds_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
