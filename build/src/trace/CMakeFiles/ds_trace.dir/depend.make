# Empty dependencies file for ds_trace.
# This may be replaced when dependencies are built.
