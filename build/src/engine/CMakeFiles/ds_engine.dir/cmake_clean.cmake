file(REMOVE_RECURSE
  "CMakeFiles/ds_engine.dir/job_run.cpp.o"
  "CMakeFiles/ds_engine.dir/job_run.cpp.o.d"
  "libds_engine.a"
  "libds_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
