# Empty dependencies file for ds_engine.
# This may be replaced when dependencies are built.
