file(REMOVE_RECURSE
  "libds_engine.a"
)
