file(REMOVE_RECURSE
  "CMakeFiles/ds_util.dir/log.cpp.o"
  "CMakeFiles/ds_util.dir/log.cpp.o.d"
  "CMakeFiles/ds_util.dir/rng.cpp.o"
  "CMakeFiles/ds_util.dir/rng.cpp.o.d"
  "CMakeFiles/ds_util.dir/strings.cpp.o"
  "CMakeFiles/ds_util.dir/strings.cpp.o.d"
  "CMakeFiles/ds_util.dir/table.cpp.o"
  "CMakeFiles/ds_util.dir/table.cpp.o.d"
  "libds_util.a"
  "libds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
