file(REMOVE_RECURSE
  "CMakeFiles/ds_sim.dir/cluster.cpp.o"
  "CMakeFiles/ds_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/ds_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ds_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ds_sim.dir/executor_pool.cpp.o"
  "CMakeFiles/ds_sim.dir/executor_pool.cpp.o.d"
  "CMakeFiles/ds_sim.dir/fair_queue.cpp.o"
  "CMakeFiles/ds_sim.dir/fair_queue.cpp.o.d"
  "CMakeFiles/ds_sim.dir/network.cpp.o"
  "CMakeFiles/ds_sim.dir/network.cpp.o.d"
  "CMakeFiles/ds_sim.dir/simulator.cpp.o"
  "CMakeFiles/ds_sim.dir/simulator.cpp.o.d"
  "libds_sim.a"
  "libds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
