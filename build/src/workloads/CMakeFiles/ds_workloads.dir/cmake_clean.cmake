file(REMOVE_RECURSE
  "CMakeFiles/ds_workloads.dir/workloads.cpp.o"
  "CMakeFiles/ds_workloads.dir/workloads.cpp.o.d"
  "libds_workloads.a"
  "libds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
