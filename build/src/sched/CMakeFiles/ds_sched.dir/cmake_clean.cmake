file(REMOVE_RECURSE
  "CMakeFiles/ds_sched.dir/strategy.cpp.o"
  "CMakeFiles/ds_sched.dir/strategy.cpp.o.d"
  "libds_sched.a"
  "libds_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
