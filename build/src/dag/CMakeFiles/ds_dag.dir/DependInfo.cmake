
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/job.cpp" "src/dag/CMakeFiles/ds_dag.dir/job.cpp.o" "gcc" "src/dag/CMakeFiles/ds_dag.dir/job.cpp.o.d"
  "/root/repo/src/dag/paths.cpp" "src/dag/CMakeFiles/ds_dag.dir/paths.cpp.o" "gcc" "src/dag/CMakeFiles/ds_dag.dir/paths.cpp.o.d"
  "/root/repo/src/dag/serialize.cpp" "src/dag/CMakeFiles/ds_dag.dir/serialize.cpp.o" "gcc" "src/dag/CMakeFiles/ds_dag.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
