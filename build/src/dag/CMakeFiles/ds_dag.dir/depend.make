# Empty dependencies file for ds_dag.
# This may be replaced when dependencies are built.
