file(REMOVE_RECURSE
  "libds_dag.a"
)
