file(REMOVE_RECURSE
  "CMakeFiles/ds_dag.dir/job.cpp.o"
  "CMakeFiles/ds_dag.dir/job.cpp.o.d"
  "CMakeFiles/ds_dag.dir/paths.cpp.o"
  "CMakeFiles/ds_dag.dir/paths.cpp.o.d"
  "CMakeFiles/ds_dag.dir/serialize.cpp.o"
  "CMakeFiles/ds_dag.dir/serialize.cpp.o.d"
  "libds_dag.a"
  "libds_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
