file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/delay_calculator.cpp.o"
  "CMakeFiles/ds_core.dir/delay_calculator.cpp.o.d"
  "CMakeFiles/ds_core.dir/evaluator.cpp.o"
  "CMakeFiles/ds_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/ds_core.dir/perf_model.cpp.o"
  "CMakeFiles/ds_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/ds_core.dir/stage_delayer.cpp.o"
  "CMakeFiles/ds_core.dir/stage_delayer.cpp.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
