file(REMOVE_RECURSE
  "CMakeFiles/ds_metrics.dir/cdf.cpp.o"
  "CMakeFiles/ds_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/ds_metrics.dir/sampler.cpp.o"
  "CMakeFiles/ds_metrics.dir/sampler.cpp.o.d"
  "CMakeFiles/ds_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/ds_metrics.dir/timeseries.cpp.o.d"
  "libds_metrics.a"
  "libds_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
