# Empty dependencies file for ds_metrics.
# This may be replaced when dependencies are built.
