# Empty compiler generated dependencies file for fair_queue_test.
# This may be replaced when dependencies are built.
