file(REMOVE_RECURSE
  "CMakeFiles/fair_queue_test.dir/fair_queue_test.cpp.o"
  "CMakeFiles/fair_queue_test.dir/fair_queue_test.cpp.o.d"
  "fair_queue_test"
  "fair_queue_test.pdb"
  "fair_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
