
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/speculation_test.cpp" "tests/CMakeFiles/speculation_test.dir/speculation_test.cpp.o" "gcc" "tests/CMakeFiles/speculation_test.dir/speculation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ds_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ds_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ds_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
