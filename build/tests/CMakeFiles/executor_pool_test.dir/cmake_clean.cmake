file(REMOVE_RECURSE
  "CMakeFiles/executor_pool_test.dir/executor_pool_test.cpp.o"
  "CMakeFiles/executor_pool_test.dir/executor_pool_test.cpp.o.d"
  "executor_pool_test"
  "executor_pool_test.pdb"
  "executor_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
