# Empty dependencies file for executor_pool_test.
# This may be replaced when dependencies are built.
