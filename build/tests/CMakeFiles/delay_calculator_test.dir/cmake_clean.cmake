file(REMOVE_RECURSE
  "CMakeFiles/delay_calculator_test.dir/delay_calculator_test.cpp.o"
  "CMakeFiles/delay_calculator_test.dir/delay_calculator_test.cpp.o.d"
  "delay_calculator_test"
  "delay_calculator_test.pdb"
  "delay_calculator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_calculator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
