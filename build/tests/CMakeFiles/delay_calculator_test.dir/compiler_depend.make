# Empty compiler generated dependencies file for delay_calculator_test.
# This may be replaced when dependencies are built.
