file(REMOVE_RECURSE
  "CMakeFiles/fabric_extras_test.dir/fabric_extras_test.cpp.o"
  "CMakeFiles/fabric_extras_test.dir/fabric_extras_test.cpp.o.d"
  "fabric_extras_test"
  "fabric_extras_test.pdb"
  "fabric_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
