# Empty compiler generated dependencies file for fabric_extras_test.
# This may be replaced when dependencies are built.
