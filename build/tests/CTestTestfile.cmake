# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/fair_queue_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/executor_pool_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/perf_model_test[1]_include.cmake")
include("/root/repo/build/tests/delay_calculator_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/engine_extras_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_property_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_extras_test[1]_include.cmake")
include("/root/repo/build/tests/locality_test[1]_include.cmake")
include("/root/repo/build/tests/speculation_test[1]_include.cmake")
